"""Tests for the exact Lemma 7 curve and the ablation hooks."""

import itertools
import random
from fractions import Fraction

import pytest

from repro.analysis.adaptive import (
    adaptivity_gain_exact,
    closest_pair_attack_cluster_exact,
)
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import bins_star_collision_probability
from repro.core.bins_star import BinsStarGenerator, chunk_count
from repro.core.cluster_star import ClusterStarGenerator
from repro.errors import ConfigurationError


class TestClosestPairExact:
    def test_matches_brute_force_enumeration(self):
        """Enumerate all m^n first-ID placements and check the spacing
        condition directly."""
        for m, n, d in [(8, 2, 5), (10, 3, 6), (12, 2, 8)]:
            gap = d - n
            collide = 0
            for starts in itertools.product(range(m), repeat=n):
                hit = any(
                    (b - a) % m < gap or (a - b) % m < gap
                    for a, b in itertools.combinations(starts, 2)
                )
                collide += hit
            expected = Fraction(collide, m**n)
            assert closest_pair_attack_cluster_exact(m, n, d) == expected

    def test_zero_budget_reduces_to_birthday(self):
        # d == n: only the probes; collision iff two first IDs equal.
        from repro.analysis.combinatorics import birthday_collision

        assert closest_pair_attack_cluster_exact(
            100, 5, 5
        ) == birthday_collision(100, 5)

    def test_monotone_in_budget(self):
        m, n = 1 << 14, 8
        previous = Fraction(0)
        for d in (8, 16, 64, 256, 1024):
            current = closest_pair_attack_cluster_exact(m, n, d)
            assert current >= previous
            previous = current

    def test_gain_is_theta_n(self):
        """Lemma 7: the adaptive gain grows linearly in n (until the
        attack probability saturates)."""
        m, d = 1 << 24, 1024
        for n in (2, 4, 8, 16):
            gain = adaptivity_gain_exact(m, n, d)
            assert n / 3 <= gain <= 3 * n

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            closest_pair_attack_cluster_exact(100, 1, 10)
        with pytest.raises(ConfigurationError):
            closest_pair_attack_cluster_exact(100, 5, 3)


class TestClusterStarGrowth:
    def test_growth_one_is_single_id_runs(self):
        generator = ClusterStarGenerator(1 << 12, random.Random(1), growth=1)
        generator.take(20)
        assert [length for _, length in generator.runs] == [1] * 20

    def test_growth_four_schedule(self):
        generator = ClusterStarGenerator(1 << 16, random.Random(2), growth=4)
        generator.take(1 + 4 + 16)
        assert [length for _, length in generator.runs] == [1, 4, 16]

    def test_growth_one_fast_path_still_distinct(self):
        m = 256
        generator = ClusterStarGenerator(m, random.Random(5), growth=1)
        ids = generator.take(200)  # past the 50% density switch
        assert len(set(ids)) == 200

    def test_invalid_growth(self):
        with pytest.raises(ConfigurationError):
            ClusterStarGenerator(64, random.Random(0), growth=0)

    def test_reservation_overhead_bounded_by_growth(self):
        for growth in (2, 4, 8):
            generator = ClusterStarGenerator(
                1 << 20, random.Random(3), growth=growth
            )
            demand = 100
            generator.take(demand)
            reserved = sum(length for _, length in generator.runs)
            assert reserved <= growth * demand


class TestBinsStarChunkOverride:
    def test_override_respected(self):
        m = 1 << 16
        generator = BinsStarGenerator(
            m, random.Random(1), num_chunks_override=6
        )
        assert generator.num_chunks == 6
        assert generator.scheduled_capacity == 63

    def test_override_validation(self):
        with pytest.raises(ConfigurationError):
            BinsStarGenerator(64, random.Random(0), num_chunks_override=20)

    @pytest.mark.slow
    def test_exact_formula_with_override_matches_simulation(self):
        from repro.simulation.montecarlo import estimate_profile_collision

        m, c = 1 << 10, 5
        profile = DemandProfile.of(7, 9)
        exact = float(
            bins_star_collision_probability(m, profile, num_chunks=c)
        )
        estimate = estimate_profile_collision(
            lambda mm, rr: BinsStarGenerator(
                mm, rr, num_chunks_override=c
            ),
            m,
            profile,
            trials=3000,
            seed=8,
        )
        assert estimate.ci_low - 0.02 <= exact <= estimate.ci_high + 0.02

    def test_fewer_chunks_worse_competitive_ratio(self):
        """The A2 effect as a unit test."""
        from repro.analysis.competitive import competitive_ratio_upper

        m = 1 << 16
        c_paper = chunk_count(m)
        # Demand must fit the reduced capacity 2^(C−4) − 1 = 255.
        profile = DemandProfile.of(2, 128)
        paper_ratio = competitive_ratio_upper(
            m,
            profile,
            bins_star_collision_probability(m, profile, c_paper),
        )
        small_ratio = competitive_ratio_upper(
            m,
            profile,
            bins_star_collision_probability(m, profile, c_paper - 4),
        )
        assert small_ratio > paper_ratio


@pytest.mark.slow
def test_ablation_experiments_pass_quick():
    from repro.experiments import ExperimentConfig, run_experiment

    for eid in ("A2",):  # A1 is MC-heavy; covered by the bench harness
        result = run_experiment(eid, ExperimentConfig(quick=True, seed=5))
        failed = [c for c in result.checks if not c.passed]
        assert not failed, [str(c) for c in failed]
