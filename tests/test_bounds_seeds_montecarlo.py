"""Unit tests for bound formulas, seed derivation, and the MC estimator."""

import random

import pytest

from repro.adversary.profiles import DemandProfile
from repro.analysis.bounds import (
    corollary3_random,
    corollary5_cluster_worst_case,
    corollary5_random_worst_case,
    lemma7_adaptive_cluster,
    lemma20_rank_lower_bound,
    lemma22_bins_star_upper,
    lemma24_pair_optimum,
    log_log_slope,
    theorem1_cluster,
    theorem2_bins,
    theorem6_lower_bound,
    theorem8_cluster_star,
    theorem9_competitive_target,
    theorem11_adaptive_factor,
)
from repro.core.cluster import ClusterGenerator
from repro.errors import ConfigurationError
from repro.simulation.montecarlo import (
    estimate_profile_collision,
    wilson_interval,
)
from repro.simulation.seeds import derive_seed, rng_for, seed_stream


class TestBoundFormulas:
    def test_theorem1(self):
        profile = DemandProfile.of(10, 10)
        assert theorem1_cluster(1000, profile) == pytest.approx(0.04)
        assert theorem1_cluster(10, profile) == 1.0  # clamped

    def test_theorem2_terms(self):
        profile = DemandProfile.uniform(2, 10)
        m, k = 10_000, 5
        expected = (400 - 200) / (5 * m) + 2 * 20 / m + 4 * 5 / m
        assert theorem2_bins(m, k, profile) == pytest.approx(expected)

    def test_theorem2_validation(self):
        with pytest.raises(ConfigurationError):
            theorem2_bins(10, 11, DemandProfile.of(1, 1))

    def test_corollary3(self):
        profile = DemandProfile.of(3, 4)
        assert corollary3_random(1000, profile) == pytest.approx(
            (49 - 25) / 1000
        )

    def test_corollary5_pair(self):
        assert corollary5_cluster_worst_case(1000, 4, 100) == pytest.approx(
            0.4
        )
        assert corollary5_random_worst_case(1 << 20, 4, 512) == pytest.approx(
            512 * 512 / (1 << 20)
        )

    def test_theorem6_matches_cluster_worst_case(self):
        assert theorem6_lower_bound(
            1 << 20, 8, 100
        ) == corollary5_cluster_worst_case(1 << 20, 8, 100)

    def test_lemma7_factor_n_above_theorem1(self):
        m, n, d = 1 << 20, 16, 256
        assert lemma7_adaptive_cluster(m, n, d) == pytest.approx(
            n * corollary5_cluster_worst_case(m, n, d)
        )

    def test_theorem8_between_thm6_and_lemma7(self):
        m, n, d = 1 << 24, 16, 4096
        assert (
            theorem6_lower_bound(m, n, d)
            <= theorem8_cluster_star(m, n, d)
            <= lemma7_adaptive_cluster(m, n, d)
        )

    def test_theorem8_validation(self):
        with pytest.raises(ConfigurationError):
            theorem8_cluster_star(100, 4, 2)

    def test_lemma20_and_22_are_log_m_apart(self):
        m = 1 << 16
        ranks = (0, 3, 2)
        assert lemma22_bins_star_upper(m, ranks) == pytest.approx(
            min(1.0, 16 * lemma20_rank_lower_bound(m, ranks))
            if lemma20_rank_lower_bound(m, ranks) * 16 <= 1
            else lemma22_bins_star_upper(m, ranks)
        )

    def test_lemma24(self):
        assert lemma24_pair_optimum(1000, 10, 50) == pytest.approx(0.01)

    def test_targets(self):
        assert theorem9_competitive_target(1 << 16) == 16
        assert theorem11_adaptive_factor() == 4.0


class TestLogLogSlope:
    def test_perfect_power_law(self):
        xs = [1, 2, 4, 8, 16]
        ys = [x**2.5 for x in xs]
        assert log_log_slope(xs, ys) == pytest.approx(2.5)

    def test_skips_nonpositive(self):
        assert log_log_slope([1, 2, 0, 4], [1, 4, 9, 16]) == pytest.approx(
            2.0
        )

    def test_degenerate_rejected(self):
        with pytest.raises(ConfigurationError):
            log_log_slope([1], [1])
        with pytest.raises(ConfigurationError):
            log_log_slope([2, 2], [1, 4])


class TestSeeds:
    def test_deterministic(self):
        assert derive_seed(42, 1, 2) == derive_seed(42, 1, 2)

    def test_path_sensitivity(self):
        assert derive_seed(42, 1, 2) != derive_seed(42, 2, 1)
        assert derive_seed(42, 12) != derive_seed(42, 1, 2)

    def test_root_sensitivity(self):
        assert derive_seed(1, 5) != derive_seed(2, 5)

    def test_rng_for_reproducible(self):
        a = rng_for(7, 1).random()
        b = rng_for(7, 1).random()
        assert a == b

    def test_seed_stream_distinct(self):
        stream = seed_stream(3)
        values = [next(stream) for _ in range(100)]
        assert len(set(values)) == 100

    def test_avalanche(self):
        """Adjacent roots should differ in ~half their bits."""
        differing = bin(derive_seed(1000, 0) ^ derive_seed(1001, 0)).count(
            "1"
        )
        assert 10 <= differing <= 54


class TestWilson:
    def test_contains_true_proportion(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high

    def test_extreme_counts(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0 and high < 0.06
        low, high = wilson_interval(100, 100)
        assert low > 0.94 and high == 1.0

    def test_narrower_with_more_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 10, confidence=2.0)


class TestEstimator:
    @pytest.mark.slow
    def test_coverage_against_exact(self):
        """The CI should cover the exact value (seeded: deterministic)."""
        from repro.analysis.exact import cluster_collision_probability

        m = 1 << 10
        profile = DemandProfile.of(16, 16)
        exact = float(cluster_collision_probability(m, profile))
        estimate = estimate_profile_collision(
            lambda mm, rr: ClusterGenerator(mm, rr),
            m,
            profile,
            trials=3000,
            seed=21,
        )
        assert estimate.ci_low - 0.01 <= exact <= estimate.ci_high + 0.01

    def test_reproducibility(self):
        m = 1 << 10
        profile = DemandProfile.of(16, 16)
        kwargs = dict(trials=200, seed=5)
        a = estimate_profile_collision(
            lambda mm, rr: ClusterGenerator(mm, rr), m, profile, **kwargs
        )
        b = estimate_profile_collision(
            lambda mm, rr: ClusterGenerator(mm, rr), m, profile, **kwargs
        )
        assert a.probability == b.probability

    def test_trials_validation(self):
        with pytest.raises(ConfigurationError):
            estimate_profile_collision(
                lambda mm, rr: ClusterGenerator(mm, rr),
                100,
                DemandProfile.of(1, 1),
                trials=0,
            )

    def test_str_rendering(self):
        estimate = estimate_profile_collision(
            lambda mm, rr: ClusterGenerator(mm, rr),
            1 << 10,
            DemandProfile.of(4, 4),
            trials=50,
            seed=1,
        )
        text = str(estimate)
        assert "/" in text and "[" in text
