"""Unit tests for repro.analysis.combinatorics."""

import math
from fractions import Fraction

import pytest

from repro.analysis.combinatorics import (
    binomial,
    birthday_collision,
    birthday_no_collision,
    circular_disjoint_arcs_probability,
    disjoint_subsets_probability,
    disjoint_subsets_probability_estimate,
    falling_factorial,
    log2_or_one,
)
from repro.errors import ConfigurationError


class TestFallingFactorial:
    def test_basic(self):
        assert falling_factorial(5, 3) == 60
        assert falling_factorial(5, 0) == 1
        assert falling_factorial(5, 5) == 120

    def test_k_exceeds_x(self):
        assert falling_factorial(3, 4) == 0

    def test_negative_k(self):
        with pytest.raises(ConfigurationError):
            falling_factorial(5, -1)

    def test_matches_math_perm(self):
        for x in range(10):
            for k in range(x + 1):
                assert falling_factorial(x, k) == math.perm(x, k)


class TestBinomial:
    def test_out_of_range_is_zero(self):
        assert binomial(5, -1) == 0
        assert binomial(5, 6) == 0

    def test_matches_math_comb(self):
        for n in range(12):
            for k in range(n + 1):
                assert binomial(n, k) == math.comb(n, k)


class TestBirthday:
    def test_classic_23_people(self):
        p = float(birthday_collision(365, 23))
        assert 0.50 < p < 0.51

    def test_edge_cases(self):
        assert birthday_no_collision(10, 0) == 1
        assert birthday_no_collision(10, 1) == 1
        assert birthday_no_collision(3, 4) == 0
        assert birthday_collision(3, 4) == 1

    def test_two_balls(self):
        assert birthday_collision(8, 2) == Fraction(1, 8)

    def test_invalid_bins(self):
        with pytest.raises(ConfigurationError):
            birthday_no_collision(0, 2)


class TestDisjointSubsets:
    def test_single_set_never_collides(self):
        assert disjoint_subsets_probability(10, [7]) == 1

    def test_overfull_is_zero(self):
        assert disjoint_subsets_probability(5, [3, 3]) == 0

    def test_pair_formula(self):
        # Two singletons: disjoint w.p. (m-1)/m.
        assert disjoint_subsets_probability(9, [1, 1]) == Fraction(8, 9)

    def test_zero_sizes_skipped(self):
        assert disjoint_subsets_probability(5, [0, 2, 0]) == 1

    def test_order_invariance(self):
        a = disjoint_subsets_probability(12, [2, 3, 4])
        b = disjoint_subsets_probability(12, [4, 2, 3])
        assert a == b

    def test_estimate_tracks_exact(self):
        # The midpoint-rule error shrinks with sizes/universe, so the
        # tolerance tightens as the universe grows relative to demand.
        for universe, sizes, rel in [
            (1000, [10, 20, 30], 2e-4),
            (10**6, [500, 400], 1e-6),
            (128, [8, 8, 8, 8], 3e-3),  # dense: estimate's worst case
        ]:
            exact = float(disjoint_subsets_probability(universe, sizes))
            estimate = disjoint_subsets_probability_estimate(
                universe, sizes
            )
            assert estimate == pytest.approx(exact, rel=rel)

    def test_estimate_overfull_zero(self):
        assert disjoint_subsets_probability_estimate(5, [3, 3]) == 0.0


class TestCircularArcs:
    def test_two_arcs_matches_paper_pairwise(self):
        # Pr[collision] = (d1 + d2 − 1)/m  (Theorem 1's pairwise event).
        for m in (7, 20):
            for d1 in (1, 3):
                for d2 in (1, 4):
                    p = 1 - circular_disjoint_arcs_probability(m, [d1, d2])
                    assert p == Fraction(d1 + d2 - 1, m)

    def test_single_arc(self):
        assert circular_disjoint_arcs_probability(10, [4]) == 1

    def test_overfull(self):
        assert circular_disjoint_arcs_probability(6, [4, 3]) == 0

    def test_perfect_packing(self):
        # Two arcs of length m/2: must start exactly opposite: 2 good
        # placements of m... for arc2 given arc1: exactly 1 start works.
        assert circular_disjoint_arcs_probability(8, [4, 4]) == Fraction(
            1, 8
        )

    def test_zero_lengths_ignored(self):
        assert circular_disjoint_arcs_probability(10, [0, 3]) == 1


def test_log2_or_one():
    assert log2_or_one(1.0) == 1.0
    assert log2_or_one(2.0) == 1.0
    assert log2_or_one(8.0) == 3.0
