"""Unit tests for circular interval arithmetic (repro.core.intervals)."""

import random

import pytest

from repro.core.intervals import (
    CircularIntervalSet,
    arcs_overlap,
    complement_linear,
    merge_linear,
    split_arc,
)
from repro.errors import ConfigurationError


def brute_force_positions(start: int, length: int, m: int) -> set:
    return {(start + i) % m for i in range(min(length, m))}


class TestSplitArc:
    def test_non_wrapping(self):
        assert split_arc(2, 3, 10) == [(2, 5)]

    def test_wrapping(self):
        assert split_arc(8, 4, 10) == [(8, 10), (0, 2)]

    def test_full_cycle(self):
        assert split_arc(3, 10, 10) == [(0, 10)]
        assert split_arc(3, 15, 10) == [(0, 10)]

    def test_zero_length(self):
        assert split_arc(3, 0, 10) == []

    def test_start_normalized(self):
        assert split_arc(12, 2, 10) == [(2, 4)]

    def test_matches_brute_force(self):
        for m in (5, 9, 16):
            for start in range(m):
                for length in range(1, m + 1):
                    pieces = split_arc(start, length, m)
                    covered = set()
                    for lo, hi in pieces:
                        covered.update(range(lo, hi))
                    assert covered == brute_force_positions(start, length, m)


class TestMergeComplement:
    def test_merge_overlapping(self):
        assert merge_linear([(0, 3), (2, 5), (7, 8)]) == [(0, 5), (7, 8)]

    def test_merge_adjacent(self):
        assert merge_linear([(0, 3), (3, 5)]) == [(0, 5)]

    def test_merge_empty(self):
        assert merge_linear([]) == []

    def test_complement_basic(self):
        assert complement_linear([(2, 4)], 10) == [(0, 2), (4, 10)]

    def test_complement_full(self):
        assert complement_linear([(0, 10)], 10) == []

    def test_complement_empty(self):
        assert complement_linear([], 10) == [(0, 10)]


class TestArcsOverlap:
    def test_disjoint(self):
        assert not arcs_overlap(0, 3, 5, 3, 10)

    def test_touching_is_disjoint(self):
        assert not arcs_overlap(0, 5, 5, 5, 10)

    def test_overlap_across_wrap(self):
        assert arcs_overlap(8, 4, 1, 2, 10)  # [8,9,0,1] vs [1,2]

    def test_brute_force_agreement(self):
        m = 11
        for sa in range(m):
            for la in (1, 3, 6):
                for sb in range(m):
                    for lb in (1, 4):
                        expected = bool(
                            brute_force_positions(sa, la, m)
                            & brute_force_positions(sb, lb, m)
                        )
                        assert arcs_overlap(sa, la, sb, lb, m) == expected


class TestCircularIntervalSet:
    def test_covered_counts_union(self):
        cis = CircularIntervalSet(20)
        cis.add(0, 5)
        cis.add(3, 4)  # overlaps; union is [0,7)
        assert cis.covered() == 7

    def test_overlaps_detects(self):
        cis = CircularIntervalSet(20)
        cis.add(5, 5)
        assert cis.overlaps(9, 1)
        assert not cis.overlaps(10, 3)

    def test_free_starts_excludes_blocked(self):
        m = 12
        cis = CircularIntervalSet(m)
        cis.add(4, 3)  # occupies {4,5,6}
        free = set()
        for lo, hi in cis.free_starts(2):
            free.update(range(lo, hi))
        # A run [x, x+2) must avoid {4,5,6}: x not in {3,4,5,6}.
        assert free == set(range(m)) - {3, 4, 5, 6}

    def test_count_free_starts_empty_set(self):
        cis = CircularIntervalSet(10)
        assert cis.count_free_starts(3) == 10

    def test_sample_free_start_valid_and_uniform_support(self):
        m = 16
        cis = CircularIntervalSet(m)
        cis.add(0, 4)
        cis.add(8, 4)
        rng = random.Random(0)
        seen = set()
        for _ in range(500):
            start = cis.sample_free_start(2, rng)
            assert not cis.overlaps(start, 2)
            seen.add(start)
        free = set()
        for lo, hi in cis.free_starts(2):
            free.update(range(lo, hi))
        assert seen == free

    def test_sample_raises_when_full(self):
        cis = CircularIntervalSet(8)
        cis.add(0, 8)
        with pytest.raises(ValueError):
            cis.sample_free_start(1, random.Random(0))

    def test_no_room_for_long_run(self):
        cis = CircularIntervalSet(10)
        cis.add(0, 5)
        assert cis.count_free_starts(6) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircularIntervalSet(0)
        cis = CircularIntervalSet(5)
        with pytest.raises(ConfigurationError):
            cis.add(0, 0)
        with pytest.raises(ConfigurationError):
            cis.free_starts(0)
