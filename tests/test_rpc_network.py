"""Live-socket tests for the ``uuidp serve`` RPC layer.

Everything here stands up a real asyncio TCP server on loopback and
drives it — through the async client, through the workload driver's
``NetworkTarget`` facade, through raw sockets speaking deliberately
broken frames, and through the CLI as a subprocess. Marked ``network``:
CI runs these in a dedicated lane under a hard pytest-timeout; the fast
lane skips them.
"""

import asyncio
import random
import re
import socket
import subprocess
import sys
import time

import pytest

from repro.distributed import rpc
from repro.distributed.protocol import (
    HEADER_SIZE,
    OP_GET,
    OP_PUT,
    STATUS_OK,
    STATUS_PROTOCOL,
    decode_frame,
    encode_attach,
    encode_frame,
    encode_kv,
)
from repro.distributed.rpc import (
    ClientPool,
    NetworkTarget,
    RPCClient,
    ServerThread,
    network_flush_and_report,
    network_target_factory,
)
from repro.errors import (
    ClusterUnavailableError,
    ConfigurationError,
    RPCConnectionError,
    RPCError,
    RPCProtocolError,
    RPCTimeoutError,
)
from repro.kvstore.options import Options
from repro.simulation.seeds import derive_seed
from repro.workloads.driver import (
    FAILED_OP_OUTCOME,
    ChaosEvent,
    DriverConfig,
    WorkloadDriver,
    cluster_target_factory,
    execute_op,
    store_target_factory,
)
from repro.workloads.ycsb import WorkloadSpec, load_phase, run_phase

pytestmark = pytest.mark.network


def small_options(**overrides):
    defaults = dict(
        memtable_entries=8,
        block_entries=4,
        level0_file_limit=2,
        id_universe=1 << 32,
        id_algorithm="cluster",
        bloom_bits_per_key=0,
    )
    defaults.update(overrides)
    return Options(**defaults)


def store_options():
    return Options(memtable_entries=32, block_entries=8, id_universe=1 << 32)


class RawConnection:
    """A blocking socket speaking raw frames — for protocol-abuse tests
    the cooperative :class:`RPCClient` refuses to produce."""

    def __init__(self, address, timeout=5.0, rcvbuf=None):
        self.sock = socket.socket()
        if rcvbuf is not None:
            # Before connect(), so it caps the negotiated window too.
            self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
        self.sock.settimeout(timeout)
        self.sock.connect(address)

    def send(self, payload: bytes) -> None:
        self.sock.sendall(payload)

    def recv_frame(self):
        """Read one response frame; None if the peer closed first."""
        prefix = self._read_exact(4)
        if prefix is None:
            return None
        frame = self._read_exact(int.from_bytes(prefix, "big"))
        if frame is None:
            return None
        return decode_frame(frame)

    def _read_exact(self, size):
        buf = b""
        while len(buf) < size:
            chunk = self.sock.recv(size - len(buf))
            if not chunk:
                return None
            buf += chunk
        return buf

    def attach(self, shard=0, seed=0, msg_id=1):
        self.send(encode_frame(msg_id, 0x01, encode_attach(shard, seed)))
        response = self.recv_frame()
        assert response == (msg_id, STATUS_OK, b"")

    def close(self):
        self.sock.close()


def assert_server_still_serves(handle):
    """The neighbor-connection invariant: after whatever abuse a test
    inflicted, a fresh well-behaved connection still works."""
    neighbor = RawConnection(handle.address)
    try:
        neighbor.attach(shard=99, seed=99)
        neighbor.send(encode_frame(2, OP_PUT, encode_kv(b"k", b"v")))
        assert neighbor.recv_frame() == (2, STATUS_OK, b"\x02")
        neighbor.send(encode_frame(3, OP_GET, encode_kv(b"k", b"")))
        assert neighbor.recv_frame() == (3, STATUS_OK, b"\x01v")
    finally:
        neighbor.close()


class TestClientServerBasics:
    def test_ops_match_in_process_outcomes(self):
        """Every outcome digest over the wire equals the digest the
        same op stream produces against a local target."""
        local = store_target_factory(store_options)(0, 1234)
        with ServerThread(store_target_factory(store_options)) as handle:
            target = NetworkTarget(*handle.address, shard=0, shard_seed=1234)
            try:
                rng = random.Random(99)
                for index in range(200):
                    op = rng.choice(["put", "get", "delete", "rmw", "scan"])
                    key = b"key%04d" % rng.randrange(64)
                    value = (
                        b"5" if op == "scan" else b"v%d" % index
                    )
                    assert target.execute(op, key, value) == execute_op(
                        local, op, key, value
                    ), (index, op, key)
            finally:
                target.close()

    def test_report_and_close_lifecycle(self):
        with ServerThread(store_target_factory(store_options)) as handle:
            target = NetworkTarget(*handle.address, shard=0, shard_seed=7)
            target.execute("put", b"a", b"1")
            report = network_flush_and_report(target)
            assert report["kind"] == "store"
            assert report["puts"] == 1
            assert report["flushes"] >= 1
            # network_flush_and_report closed the connection and tore
            # down the shard's private loop thread.
            assert not target._loop._thread.is_alive()

    def test_pool_round_robins_and_pipelines(self):
        with ServerThread(store_target_factory(store_options)) as handle:
            host, port = handle.address

            async def scenario():
                pool = await ClientPool(
                    host, port, size=3, shard_base=10, shard_seed=5
                ).start()
                try:
                    # Concurrent pipelined puts across the pool; each
                    # connection's target is private, so every shard
                    # sees its own keyspace.
                    outcomes = await asyncio.gather(
                        *[pool.call("put", b"k%d" % i, b"v") for i in range(30)]
                    )
                    assert outcomes == [b"\x02"] * 30
                finally:
                    await pool.aclose()

            asyncio.run(scenario())
            assert handle.server.connections_opened == 3
            # 3 attaches + 30 puts; the counter increments just after
            # each drain(), so give the server loop a beat to catch up.
            deadline = time.time() + 5
            while handle.server.frames_served < 33 and time.time() < deadline:
                time.sleep(0.01)
            assert handle.server.frames_served == 33

    def test_pool_and_client_validation(self):
        with pytest.raises(ConfigurationError):
            ClientPool("h", 1, size=0)

        async def bad_in_flight():
            reader = asyncio.StreamReader()
            RPCClient(reader, None, max_in_flight=0)

        with pytest.raises(ConfigurationError):
            asyncio.run(bad_in_flight())

    def test_unknown_op_rejected_client_side(self):
        with ServerThread(store_target_factory(store_options)) as handle:
            target = NetworkTarget(*handle.address, shard=0, shard_seed=1)
            try:
                with pytest.raises(ConfigurationError):
                    target.execute("increment", b"k", b"")
            finally:
                target.close()


class TestDriverFingerprintParity:
    """The acceptance gate: a network run reproduces an in-process run
    bit for bit, at any ``workers=``."""

    def _spec(self, workload):
        return WorkloadSpec(
            workload=workload,
            record_count=80,
            operation_count=200,
            value_size=16,
            max_scan_length=10,
        )

    def _run(self, factory, workload, workers, collect):
        config = DriverConfig(
            spec=self._spec(workload),
            shards=2,
            workers=workers,
            warmup_operations=30,
            seed=20230414,
        )
        return WorkloadDriver(factory, config, collect=collect).run()

    @pytest.mark.parametrize("workload", list("abcdef"))
    def test_network_matches_in_process_cluster(self, workload):
        def fleet():
            return cluster_target_factory(3, small_options)

        local = self._run(fleet(), workload, workers=1, collect=None)
        with ServerThread(fleet()) as handle:
            host, port = handle.address
            net_serial = self._run(
                network_target_factory(host, port),
                workload,
                workers=1,
                collect=network_flush_and_report,
            )
            net_threaded = self._run(
                network_target_factory(host, port),
                workload,
                workers=4,
                collect=network_flush_and_report,
            )
        for net in (net_serial, net_threaded):
            assert net.fingerprint == local.fingerprint
            assert net.op_counts == local.op_counts
            assert [s.fingerprint for s in net.shard_results] == [
                s.fingerprint for s in local.shard_results
            ]
            assert not net.op_errors
        # The collect hook fetched each remote shard's report.
        assert all(
            s.collected["kind"] == "cluster"
            for s in net_serial.shard_results
        )


class TestChaosOverRPC:
    """Fault injection through the network boundary."""

    NODES = 5
    RF = 3

    def test_node_kill_behind_rpc_loses_no_acked_writes(self):
        spec = WorkloadSpec(
            workload="a",
            record_count=150,
            operation_count=400,
            value_size=16,
            max_scan_length=25,
        )
        config = DriverConfig(
            spec=spec,
            shards=1,
            workers=1,
            seed=20230414,
            chaos=(ChaosEvent(at_op=300, action="kill", node=1),),
        )
        factory = cluster_target_factory(
            self.NODES, small_options, replication_factor=self.RF
        )
        with ServerThread(factory) as handle:
            host, port = handle.address
            result = WorkloadDriver(
                network_target_factory(host, port),
                config,
                collect=lambda target: target,  # keep the socket open
            ).run()
            target = result.shard_results[0].collected
            try:
                assert result.operations == spec.operation_count
                assert not result.op_errors  # RF=3 absorbed the kill
                # Zero lost acknowledged writes, verified THROUGH the
                # RPC boundary: every key's last acked value is still
                # readable over the wire from the surviving quorum.
                shard_seed = derive_seed(config.seed, 0xD21E, 0)
                rng = random.Random(derive_seed(shard_seed, 0x0B5))
                expected = {}
                for op, key, value in load_phase(spec, rng):
                    expected[key] = value
                for op, key, value in run_phase(spec, rng):
                    if op in ("put", "rmw"):
                        expected[key] = value
                assert expected
                for key, value in expected.items():
                    assert target.execute("get", key, b"") == b"\x01" + value, (
                        f"acknowledged write to {key!r} lost behind RPC"
                    )
                report = target.collect_report()
                assert report["kind"] == "cluster"
                assert report["dead_nodes"] == 1
                assert report["id_collisions"] == 0
            finally:
                target.close()

    def test_kill_and_recover_replay_hints_over_rpc(self):
        spec = WorkloadSpec(
            workload="a", record_count=150, operation_count=500, value_size=16
        )
        config = DriverConfig(
            spec=spec,
            shards=1,
            seed=3,
            chaos=(
                ChaosEvent(at_op=200, action="kill", node=0),
                ChaosEvent(at_op=400, action="recover", node=0),
            ),
        )
        factory = cluster_target_factory(
            self.NODES, small_options, replication_factor=self.RF
        )
        with ServerThread(factory) as handle:
            host, port = handle.address
            result = WorkloadDriver(
                network_target_factory(host, port),
                config,
                collect=network_flush_and_report,
            ).run()
        report = result.shard_results[0].collected
        assert report["dead_nodes"] == 0
        assert report["hints_replayed"] > 0
        assert report["hints_outstanding"] == 0

    def test_kill_against_store_target_is_an_error_not_a_crash(self):
        with ServerThread(store_target_factory(store_options)) as handle:
            target = NetworkTarget(*handle.address, shard=0, shard_seed=1)
            try:
                with pytest.raises(RPCError, match="not fault-injectable"):
                    target.kill(0)
                # The connection survives an execution error.
                assert target.execute("put", b"k", b"v") == b"\x02"
            finally:
                target.close()


class _SlowGetTarget:
    """Server-side target whose reads outlast the client timeout."""

    def __init__(self, delay):
        self.delay = delay
        self.state = {}

    def execute(self, op, key, value):
        if op == "get":
            time.sleep(self.delay)
            return b"\x01" + self.state[key] if key in self.state else b"\x00"
        if op == "put":
            self.state[key] = value
            return b"\x02"
        raise AssertionError(f"unexpected op {op}")


class TestTimeoutsAndRetries:
    def test_op_timeout_surfaces_as_unavailability(self):
        factory = lambda shard, seed: _SlowGetTarget(delay=1.0)  # noqa: E731
        with ServerThread(factory) as handle:
            target = NetworkTarget(
                *handle.address, shard=0, shard_seed=0, timeout=0.05
            )
            try:
                with pytest.raises(RPCTimeoutError) as excinfo:
                    target.execute("get", b"k", b"")
                assert isinstance(excinfo.value, ClusterUnavailableError)
            finally:
                target.close()

    def test_driver_counts_timeouts_as_failed_ops(self):
        """A timed-out op is an outcome, not a crash: the run completes,
        per-op error counters fill in, and the fingerprint is
        deterministic (the failure marker is fixed)."""
        spec = WorkloadSpec(
            workload="c", record_count=10, operation_count=6, value_size=8
        )

        def run():
            factory = lambda shard, seed: _SlowGetTarget(0.2)  # noqa: E731
            with ServerThread(factory) as handle:
                host, port = handle.address
                return WorkloadDriver(
                    network_target_factory(host, port, timeout=0.05),
                    DriverConfig(spec=spec, shards=1, seed=5),
                    collect=lambda target: target.close(),
                ).run()

        result = run()
        assert result.operations == 6
        assert result.op_errors == {"get": 6}  # workload C is all reads
        assert result.timeouts == 6
        payload = result.to_dict()
        assert payload["op_errors"] == {"get": 6}
        assert payload["timeouts"] == 6
        # Deterministic failures -> deterministic fingerprint.
        assert result.fingerprint == run().fingerprint

    def test_failed_op_outcome_is_a_fixed_marker(self):
        assert FAILED_OP_OUTCOME == b"\xfe"

    def test_connect_backoff_is_deterministic_and_bounded(self, monkeypatch):
        # A port with no listener: bind, learn the number, close.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        delays = []

        async def recording_sleep(seconds):
            delays.append(round(seconds, 6))

        monkeypatch.setattr(rpc, "_sleep", recording_sleep)
        with pytest.raises(RPCConnectionError) as excinfo:
            asyncio.run(
                RPCClient.connect(
                    "127.0.0.1", port, retries=4, backoff=0.05
                )
            )
        # Jitterless doubling schedule, one sleep per failed attempt
        # except the last; the error is unavailability-class.
        assert delays == [0.05, 0.1, 0.2, 0.4]
        assert "5 attempt(s)" in str(excinfo.value)
        assert isinstance(excinfo.value, ClusterUnavailableError)


class TestProtocolAbuse:
    """Malformed frames against a live server: the offending connection
    dies with a protocol error; the server and its other connections
    never notice."""

    def _server(self):
        return ServerThread(
            store_target_factory(store_options), max_frame=4096
        )

    def test_oversized_length_prefix(self):
        with self._server() as handle:
            conn = RawConnection(handle.address)
            conn.send((4097).to_bytes(4, "big"))
            response = conn.recv_frame()
            assert response is not None
            msg_id, status, payload = response
            assert (msg_id, status) == (0, STATUS_PROTOCOL)
            assert b"max frame" in payload
            assert conn.recv_frame() is None  # connection closed
            conn.close()
            assert handle.server.protocol_errors == 1
            assert_server_still_serves(handle)

    def test_undersized_length_prefix(self):
        with self._server() as handle:
            conn = RawConnection(handle.address)
            conn.send((3).to_bytes(4, "big"))
            response = conn.recv_frame()
            assert response is not None and response[1] == STATUS_PROTOCOL
            assert conn.recv_frame() is None
            conn.close()
            assert_server_still_serves(handle)

    def test_mid_frame_disconnect(self):
        with self._server() as handle:
            conn = RawConnection(handle.address)
            # Claim 100 bytes, deliver 10, vanish.
            conn.send((100).to_bytes(4, "big") + b"x" * 10)
            conn.close()
            deadline = time.time() + 5
            while handle.server.protocol_errors == 0:
                assert time.time() < deadline, "protocol error never counted"
                time.sleep(0.01)
            assert_server_still_serves(handle)

    def test_garbage_op_code(self):
        with self._server() as handle:
            conn = RawConnection(handle.address)
            conn.attach()
            conn.send(encode_frame(2, 0x7F, b""))
            response = conn.recv_frame()
            assert response is not None
            msg_id, status, payload = response
            assert (msg_id, status) == (2, STATUS_PROTOCOL)
            assert b"unknown op code" in payload
            assert conn.recv_frame() is None
            conn.close()
            assert_server_still_serves(handle)

    def test_data_op_before_attach(self):
        with self._server() as handle:
            conn = RawConnection(handle.address)
            conn.send(encode_frame(1, OP_GET, encode_kv(b"k", b"")))
            response = conn.recv_frame()
            assert response is not None
            assert response[1] == STATUS_PROTOCOL
            assert b"ATTACH" in response[2]
            assert conn.recv_frame() is None
            conn.close()
            assert_server_still_serves(handle)

    def test_double_attach(self):
        with self._server() as handle:
            conn = RawConnection(handle.address)
            conn.attach()
            conn.send(encode_frame(2, 0x01, encode_attach(1, 1)))
            response = conn.recv_frame()
            assert response is not None
            assert response[1] == STATUS_PROTOCOL
            assert conn.recv_frame() is None
            conn.close()
            assert_server_still_serves(handle)

    def test_truncated_body_for_known_op(self):
        with self._server() as handle:
            conn = RawConnection(handle.address)
            conn.attach()
            conn.send(encode_frame(2, OP_PUT, b"\x00\x00"))  # cut kv body
            response = conn.recv_frame()
            assert response is not None
            assert response[1] == STATUS_PROTOCOL
            conn.close()
            assert_server_still_serves(handle)

    def test_client_refuses_to_send_oversized_frames(self):
        with self._server() as handle:
            target = NetworkTarget(*handle.address, shard=0, shard_seed=0)
            try:
                with pytest.raises(RPCProtocolError):
                    asyncio.run_coroutine_threadsafe(
                        target._client.call("put", b"k", b"x" * (1 << 21)),
                        target._loop.loop,
                    ).result()
            finally:
                target.close()


class TestSlowClientBackpressure:
    def test_write_buffer_stays_bounded(self):
        """A client that stops reading parks the server handler on
        ``drain()``: buffered response bytes stay under the high-water
        mark plus one frame, instead of growing with the backlog."""
        high = 4096
        value = b"v" * 8192
        with ServerThread(
            store_target_factory(store_options),
            write_buffer_high=high,
        ) as handle:
            # Shrink both kernel buffers so the OS cannot absorb the
            # backlog for us — the transport itself has to buffer, and
            # the high-water mark is what bounds it.
            conn = RawConnection(handle.address, timeout=30.0, rcvbuf=4096)
            conn.attach()
            for writer in handle.server._writers:
                writer.get_extra_info("socket").setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, 4096
                )
            conn.send(encode_frame(2, OP_PUT, encode_kv(b"big", value)))
            assert conn.recv_frame() == (2, STATUS_OK, b"\x02")
            # Pipeline many fat reads WITHOUT reading responses.
            requests = 100
            for index in range(requests):
                conn.send(
                    encode_frame(10 + index, OP_GET, encode_kv(b"big", b""))
                )
            time.sleep(0.5)  # let the server run into the limit
            # Now drain everything; the server finishes the backlog.
            for index in range(requests):
                response = conn.recv_frame()
                assert response == (
                    10 + index, STATUS_OK, b"\x01" + value,
                )
            conn.close()
            peak = handle.server.peak_write_buffer
            frame_size = 4 + HEADER_SIZE + 1 + len(value)
            assert 0 < peak <= high + frame_size, (
                f"server buffered {peak} bytes for a slow client "
                f"(limit {high} + one {frame_size}-byte frame)"
            )


class TestServeCLI:
    """End-to-end: the ``uuidp serve`` subprocess and
    ``uuidp kv --target network`` against it."""

    def _start_server(self, *extra):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", *extra,
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        line = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        assert match, f"unparseable serve banner: {line!r}"
        return proc, f"{match.group(1)}:{match.group(2)}"

    def test_kv_network_vs_cluster_fingerprints(self):
        from repro.cli import main

        proc, addr = self._start_server(
            "--target", "cluster", "--nodes", "3",
        )
        try:
            import io
            import json
            from contextlib import redirect_stdout

            def kv(*argv):
                out = io.StringIO()
                with redirect_stdout(out):
                    assert main(["kv", "--workload", "b", "--ops", "200",
                                 "--records", "60", "--shards", "2",
                                 "--seed", "11", "--json", *argv]) == 0
                return json.loads(out.getvalue())

            net = kv("--target", "network", "--addr", addr)
            local = kv("--target", "cluster", "--nodes", "3")
            assert net["fingerprint"] == local["fingerprint"]
            assert net["config"]["addr"] == addr
            assert [s["kind"] for s in net["server"]] == ["cluster"] * 2
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_kv_network_rejects_cluster_only_flags(self, capsys):
        from repro.cli import main

        assert main([
            "kv", "--target", "network", "--addr", "127.0.0.1:1",
            "--replication", "3",
        ]) == 2
        assert "serve" in capsys.readouterr().err

    def test_kv_network_requires_addr(self, capsys):
        from repro.cli import main

        assert main(["kv", "--target", "network"]) == 2
        assert "--addr" in capsys.readouterr().err

    def test_bad_addr_rejected(self, capsys):
        from repro.cli import main

        for addr in ("nocolon", ":123", "host:port"):
            assert main([
                "kv", "--target", "network", "--addr", addr,
            ]) == 2
            assert "addr" in capsys.readouterr().err
