"""Unit tests for the game engine and adversary protocol."""

import random

import pytest

from repro.adversary.base import (
    NEW_INSTANCE,
    Adversary,
    GameView,
    ObliviousAdversary,
)
from repro.adversary.profiles import DemandProfile, family_d1
from repro.core.cluster import ClusterGenerator
from repro.core.random_gen import RandomGenerator
from repro.errors import GameError
from repro.simulation.game import Game, play_profile


def cluster_factory(m, rng):
    return ClusterGenerator(m, rng)


class ScriptedAdversary(Adversary):
    """Plays a fixed script of requests."""

    def __init__(self, script):
        self.script = list(script)
        self.cursor = 0

    def next_request(self, view):
        if self.cursor >= len(self.script):
            return None
        choice = self.script[self.cursor]
        self.cursor += 1
        return choice


class TestGameBasics:
    def test_profile_accumulates(self):
        adversary = ScriptedAdversary(
            [NEW_INSTANCE, NEW_INSTANCE, 0, 0, 1]
        )
        game = Game(cluster_factory, 1 << 20, adversary, seed=1)
        result = game.run()
        assert result.profile.demands == (3, 2)
        assert result.steps == 5
        assert not result.collided

    def test_unknown_instance_rejected(self):
        adversary = ScriptedAdversary([NEW_INSTANCE, 5])
        game = Game(cluster_factory, 100, adversary, seed=1)
        with pytest.raises(GameError):
            game.run()

    def test_empty_game_rejected(self):
        game = Game(cluster_factory, 100, ScriptedAdversary([]), seed=1)
        with pytest.raises(GameError):
            game.run()

    def test_max_steps_caps_the_game(self):
        adversary = ScriptedAdversary([NEW_INSTANCE] + [0] * 100)
        game = Game(cluster_factory, 1 << 16, adversary, seed=1)
        result = game.run(max_steps=10)
        assert result.steps == 10

    def test_transcript_kept_on_request(self):
        adversary = ScriptedAdversary([NEW_INSTANCE, 0, 0])
        game = Game(
            cluster_factory, 1 << 10, adversary, seed=3, keep_transcript=True
        )
        result = game.run()
        assert len(result.transcript) == 3
        assert all(instance == 0 for instance, _ in result.transcript)

    def test_collision_detection_forced(self):
        """m=1: every second request collides."""
        adversary = ScriptedAdversary([NEW_INSTANCE, NEW_INSTANCE])
        game = Game(cluster_factory, 1, adversary, seed=1)
        result = game.run()
        assert result.collided
        assert result.collision_step == 2

    def test_stop_on_collision(self):
        adversary = ScriptedAdversary(
            [NEW_INSTANCE, NEW_INSTANCE, NEW_INSTANCE, NEW_INSTANCE]
        )
        game = Game(cluster_factory, 2, adversary, seed=1, stop_on_collision=True)
        result = game.run()
        assert result.collided
        # At m=2, a collision must happen by the 3rd activation at latest;
        # the game stops at the first one.
        assert result.steps <= 3

    def test_exhaustion_reported(self):
        adversary = ScriptedAdversary([NEW_INSTANCE] + [0] * 10)
        game = Game(
            cluster_factory, 4, adversary, seed=1, stop_on_collision=False
        )
        result = game.run()
        assert result.exhausted
        assert result.steps == 4

    def test_family_enforced(self):
        adversary = ScriptedAdversary([NEW_INSTANCE, NEW_INSTANCE, 0])
        game = Game(
            cluster_factory,
            1 << 20,
            adversary,
            seed=1,
            family=family_d1(3, 10),  # needs exactly 3 instances
        )
        with pytest.raises(GameError):
            game.run()

    def test_instances_get_independent_rngs(self):
        adversary = ScriptedAdversary([NEW_INSTANCE, NEW_INSTANCE])
        game = Game(
            cluster_factory, 1 << 30, adversary, seed=7, keep_transcript=True
        )
        result = game.run()
        first_ids = [value for _, value in result.transcript]
        assert first_ids[0] != first_ids[1]


class TestGameView:
    def test_view_records(self):
        view = GameView(100)
        view._record(0, 42, False)
        view._record(1, 42, True)
        assert view.num_instances == 2
        assert view.steps == 2
        assert view.collided
        assert view.collision_step == 2
        assert view.ids_of(0) == (42,)
        assert view.last_id_of(1) == 42
        assert view.counts() == (1, 1)

    def test_last_id_of_empty_instance(self):
        view = GameView(10)
        view._record(0, 1, False)
        with pytest.raises(IndexError):
            view.ids_of(3)

    def test_events_since(self):
        view = GameView(10)
        view._record(0, 1, False)
        view._record(0, 2, False)
        assert list(view.events_since(1)) == [(0, 2)]


class TestObliviousAdversary:
    @pytest.mark.parametrize("order", ["sequential", "round_robin", "random"])
    def test_realizes_profile(self, order):
        profile = DemandProfile.of(3, 1, 2)
        adversary = ObliviousAdversary(
            profile, order=order, rng=random.Random(5)
        )
        game = Game(
            cluster_factory, 1 << 20, adversary, seed=2,
            stop_on_collision=False,
        )
        result = game.run()
        assert sorted(result.profile.demands) == sorted(profile.demands)
        assert result.steps == profile.total

    def test_unknown_order(self):
        with pytest.raises(GameError):
            ObliviousAdversary(DemandProfile.of(1, 1), order="zigzag")

    def test_round_robin_interleaves(self):
        profile = DemandProfile.of(2, 2)
        adversary = ObliviousAdversary(profile, order="round_robin")
        game = Game(
            cluster_factory, 1 << 16, adversary, seed=2,
            stop_on_collision=False, keep_transcript=True,
        )
        result = game.run()
        instances = [instance for instance, _ in result.transcript]
        assert instances == [0, 1, 0, 1]


class TestPlayProfile:
    def test_returns_full_profile(self):
        result = play_profile(
            cluster_factory, 1 << 16, DemandProfile.of(4, 4), seed=3
        )
        assert result.profile.demands == (4, 4)

    def test_reproducible(self):
        a = play_profile(
            lambda m, rng: RandomGenerator(m, rng),
            1 << 10,
            DemandProfile.of(8, 8),
            seed=11,
        )
        b = play_profile(
            lambda m, rng: RandomGenerator(m, rng),
            1 << 10,
            DemandProfile.of(8, 8),
            seed=11,
        )
        assert a.collided == b.collided
