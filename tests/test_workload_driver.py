"""Tests for the workload driver: histogram, determinism, targets."""

import random

import pytest

from repro.errors import ClusterUnavailableError, ConfigurationError
from repro.kvstore.db import MiniRocks
from repro.kvstore.options import Options
from repro.workloads.driver import (
    FAILED_OP_OUTCOME,
    ChaosEvent,
    DriverConfig,
    LatencyHistogram,
    WorkloadDriver,
    cluster_target_factory,
    flush_and_report,
    store_target_factory,
    validate_chaos_schedule,
)
from repro.workloads.ycsb import WorkloadSpec, encode_key


def small_options():
    return Options(
        memtable_entries=32, block_entries=8, id_universe=1 << 32
    )


def tiny_universe_options():
    return Options(
        memtable_entries=16,
        block_entries=8,
        level0_file_limit=3,
        id_universe=1 << 13,
        id_algorithm="random",
        bloom_bits_per_key=0,
    )


class TestLatencyHistogram:
    def test_small_values_are_exact(self):
        hist = LatencyHistogram()
        for value in [0, 1, 5, 15]:
            hist.record(value)
        assert hist.count == 4
        assert hist.total_ns == 21
        assert hist.max_ns == 15
        assert hist.percentile(1.0) == 15

    def test_percentile_relative_error_is_bounded(self):
        hist = LatencyHistogram()
        rng = random.Random(42)
        values = sorted(rng.randrange(100, 10_000_000) for _ in range(5000))
        for value in values:
            hist.record(value)
        for q in (0.5, 0.95, 0.99):
            true = values[int(q * len(values)) - 1]
            measured = hist.percentile(q)
            assert abs(measured - true) / true < 0.10, (q, true, measured)

    def test_merge_equals_combined_stream(self):
        rng = random.Random(7)
        values = [rng.randrange(1, 1_000_000) for _ in range(2000)]
        combined = LatencyHistogram()
        left, right = LatencyHistogram(), LatencyHistogram()
        for index, value in enumerate(values):
            combined.record(value)
            (left if index % 2 == 0 else right).record(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.total_ns == combined.total_ns
        assert left.max_ns == combined.max_ns
        for q in (0.5, 0.9, 0.99):
            assert left.percentile(q) == combined.percentile(q)

    def test_empty_and_validation(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.99) == 0
        assert hist.mean_ns == 0.0
        with pytest.raises(ConfigurationError):
            hist.percentile(1.5)

    def test_summary_units(self):
        hist = LatencyHistogram()
        hist.record(2_000)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["mean_us"] == 2.0


class TestDriverDeterminism:
    """The PR's acceptance gate: results pure in (seed, shard)."""

    @pytest.mark.parametrize("workload", ["a", "d", "e", "f"])
    def test_workers_1_vs_4_bit_identical(self, workload):
        spec = WorkloadSpec(
            workload=workload,
            record_count=120,
            operation_count=300,
            max_scan_length=10,
        )
        results = []
        for workers in (1, 4):
            config = DriverConfig(
                spec=spec,
                shards=4,
                workers=workers,
                warmup_operations=40,
                seed=31337,
            )
            results.append(
                WorkloadDriver(
                    store_target_factory(small_options), config
                ).run()
            )
        serial, sharded = results
        assert serial.fingerprint == sharded.fingerprint
        assert [s.fingerprint for s in serial.shard_results] == [
            s.fingerprint for s in sharded.shard_results
        ]
        assert serial.op_counts == sharded.op_counts
        assert serial.operations == sharded.operations

    def test_same_seed_repeats_different_seed_differs(self):
        spec = WorkloadSpec(workload="b", record_count=80, operation_count=200)

        def run(seed):
            return WorkloadDriver(
                store_target_factory(small_options),
                DriverConfig(spec=spec, shards=2, seed=seed),
            ).run()

        assert run(5).fingerprint == run(5).fingerprint
        assert run(5).fingerprint != run(6).fingerprint

    def test_shards_have_distinct_streams(self):
        spec = WorkloadSpec(workload="a", record_count=80, operation_count=200)
        result = WorkloadDriver(
            store_target_factory(small_options),
            DriverConfig(spec=spec, shards=3, seed=1),
        ).run()
        fingerprints = [s.fingerprint for s in result.shard_results]
        assert len(set(fingerprints)) == 3


class TestDriverExecution:
    def test_measured_op_accounting(self):
        spec = WorkloadSpec(workload="a", record_count=60, operation_count=150)
        config = DriverConfig(
            spec=spec, shards=2, warmup_operations=30, seed=2
        )
        result = WorkloadDriver(
            store_target_factory(small_options), config
        ).run()
        assert result.operations == 2 * 150  # warmup excluded
        assert result.histogram.count == 2 * 150
        assert sum(result.op_counts.values()) == 2 * 150
        assert result.ops_per_second > 0
        for shard in result.shard_results:
            assert shard.operations == 150

    def test_throughput_covers_the_measured_phase_only(self):
        # A big load relative to the measured phase must not depress
        # ops/s: throughput is measured ops over the measured span.
        spec = WorkloadSpec(workload="c", record_count=5000, operation_count=200)
        result = WorkloadDriver(
            store_target_factory(small_options),
            DriverConfig(spec=spec, shards=1, seed=8),
        ).run()
        assert 0 < result.measured_elapsed_seconds < result.elapsed_seconds
        shard = result.shard_results[0]
        assert shard.measure_ended >= shard.measure_started
        assert result.ops_per_second == pytest.approx(
            result.operations / result.measured_elapsed_seconds
        )
        # The load phase alone dominates the run here; measured ops/s
        # must come out far above ops/whole-run-wall-clock.
        assert result.ops_per_second > result.operations / result.elapsed_seconds

    def test_rmw_counts_as_one_logical_op(self):
        spec = WorkloadSpec(workload="f", record_count=40, operation_count=200)
        result = WorkloadDriver(
            store_target_factory(small_options),
            DriverConfig(spec=spec, shards=1, seed=3),
        ).run()
        assert sum(result.op_counts.values()) == 200
        assert result.op_counts.get("rmw", 0) > 0

    def test_workload_e_uses_the_scan_path(self):
        spec = WorkloadSpec(
            workload="e", record_count=200, operation_count=150,
            max_scan_length=8,
        )
        result = WorkloadDriver(
            store_target_factory(small_options),
            DriverConfig(spec=spec, shards=1, seed=4),
            collect=lambda db: db.stats.scans,
        ).run()
        assert result.op_counts.get("scan", 0) > 100
        assert result.shard_results[0].collected >= result.op_counts["scan"]

    def test_collect_callback_receives_target(self):
        spec = WorkloadSpec(workload="c", record_count=30, operation_count=50)
        result = WorkloadDriver(
            store_target_factory(small_options),
            DriverConfig(spec=spec, shards=2, seed=5),
            collect=lambda db: db.name,
        ).run()
        assert [s.collected for s in result.shard_results] == [
            "shard0", "shard1",
        ]

    def test_cluster_target_with_rebalance(self):
        spec = WorkloadSpec(workload="a", record_count=150, operation_count=400)
        config = DriverConfig(
            spec=spec, shards=2, seed=6, rebalance_every=100,
        )
        result = WorkloadDriver(
            cluster_target_factory(3, tiny_universe_options, cache_blocks=512),
            config,
            collect=flush_and_report,
        ).run()
        assert result.operations == 2 * 400
        for shard in result.shard_results:
            report = shard.collected
            assert report.operations >= 400
            assert report.audit.total_ids_assigned > 0

    def test_to_dict_schema(self):
        spec = WorkloadSpec(workload="b", record_count=30, operation_count=60)
        result = WorkloadDriver(
            store_target_factory(small_options),
            DriverConfig(spec=spec, shards=1, seed=7),
        ).run()
        payload = result.to_dict()
        for key in (
            "workload", "operations", "ops_per_second", "p50_us",
            "p95_us", "p99_us", "fingerprint", "op_counts",
        ):
            assert key in payload

    def test_config_validation(self):
        spec = WorkloadSpec()
        with pytest.raises(ConfigurationError):
            DriverConfig(spec=spec, shards=0)
        with pytest.raises(ConfigurationError):
            DriverConfig(spec=spec, workers=0)
        with pytest.raises(ConfigurationError):
            DriverConfig(spec=spec, warmup_operations=-1)
        with pytest.raises(ConfigurationError):
            DriverConfig(spec=spec, rebalance_every=0)


class TestChaosScheduleValidation:
    """The ``uuidp kv`` pre-flight: impossible schedules fail before
    the load phase, not 90% into a run."""

    def kill(self, at_op, node=0):
        return ChaosEvent(at_op=at_op, action="kill", node=node)

    def recover(self, at_op, node=0):
        return ChaosEvent(at_op=at_op, action="recover", node=node)

    def test_valid_schedules_pass(self):
        validate_chaos_schedule([])
        validate_chaos_schedule([self.kill(100)])
        validate_chaos_schedule([self.kill(100), self.recover(200)])
        validate_chaos_schedule(
            [self.kill(100), self.recover(200), self.kill(300)]
        )
        # Independent nodes don't interfere.
        validate_chaos_schedule(
            [self.kill(100, node=0), self.kill(100, node=1),
             self.recover(150, node=1)]
        )
        # Order given doesn't matter; validation walks tick order.
        validate_chaos_schedule([self.recover(200), self.kill(100)])

    def test_recover_before_kill_rejected(self):
        with pytest.raises(ConfigurationError, match="recover"):
            validate_chaos_schedule([self.recover(100)])
        with pytest.raises(ConfigurationError, match="no earlier kill"):
            validate_chaos_schedule([self.kill(300), self.recover(200)])

    def test_recover_at_kill_tick_rejected(self):
        # Same tick would kill-then-recover within one tick and
        # silently no-op the outage.
        with pytest.raises(ConfigurationError, match="at or before"):
            validate_chaos_schedule([self.kill(300), self.recover(300)])

    def test_double_kill_rejected(self):
        with pytest.raises(ConfigurationError, match="already dead"):
            validate_chaos_schedule([self.kill(100), self.kill(200)])
        # ... unless a recover separates them.
        validate_chaos_schedule(
            [self.kill(100), self.recover(150), self.kill(200)]
        )

    def test_other_nodes_unaffected_by_a_kill(self):
        with pytest.raises(ConfigurationError):
            validate_chaos_schedule(
                [self.kill(100, node=0), self.recover(200, node=1)]
            )


class _FlakyStore:
    """A target whose gets fail with unavailability after a cutoff —
    for the driver's failed-op accounting."""

    def __init__(self, fail_after):
        self.fail_after = fail_after
        self.gets = 0
        self.state = {}

    def execute(self, op, key, value):
        if op == "get":
            self.gets += 1
            if self.gets > self.fail_after:
                raise ClusterUnavailableError("quorum lost")
            return (
                b"\x01" + self.state[key] if key in self.state else b"\x00"
            )
        if op in ("put", "rmw"):
            self.state[key] = value
            return b"\x02"
        raise AssertionError(f"unexpected op {op}")


class TestFailedOpAccounting:
    """Unavailability during the measured phase is an outcome, not a
    crash: runs complete, counters fill, fingerprints stay pure."""

    def _run(self, fail_after):
        spec = WorkloadSpec(workload="a", record_count=20, operation_count=60)
        return WorkloadDriver(
            lambda shard, seed: _FlakyStore(fail_after),
            DriverConfig(spec=spec, shards=1, seed=9),
        ).run()

    def test_errors_counted_and_deterministic(self):
        result = self._run(fail_after=5)
        assert result.operations == 60
        assert result.op_errors.get("get", 0) > 0
        assert result.timeouts == 0  # unavailability, not timeouts
        assert sum(result.op_counts.values()) == 60
        payload = result.to_dict()
        assert payload["op_errors"] == result.op_errors
        assert payload["timeouts"] == 0
        # Same seed, same failure pattern -> same fingerprint; the
        # failure marker is a fixed byte, not wall-clock dependent.
        assert result.fingerprint == self._run(5).fingerprint
        assert result.fingerprint != self._run(10**9).fingerprint

    def test_healthy_runs_report_no_errors(self):
        result = self._run(fail_after=10**9)
        assert result.op_errors == {}
        assert result.timeouts == 0
        assert FAILED_OP_OUTCOME not in (b"\x00", b"\x01", b"\x02")

    def test_load_phase_failures_still_propagate(self):
        # The load phase seeds ground truth; a target that cannot even
        # load is a broken setup, not a measurable outcome.
        class BrokenStore:
            def execute(self, op, key, value):
                raise ClusterUnavailableError("down")

        spec = WorkloadSpec(workload="a", record_count=10, operation_count=10)
        with pytest.raises(ClusterUnavailableError):
            WorkloadDriver(
                lambda shard, seed: BrokenStore(),
                DriverConfig(spec=spec, shards=1, seed=1),
            ).run()


class TestScanSupport:
    """The kvstore/cluster surface the driver leans on."""

    def test_minirocks_open_ended_scan(self):
        db = MiniRocks(small_options(), rng=random.Random(1))
        for index in range(50):
            db.put(encode_key(index), b"v%d" % index)
        db.flush()
        rows = db.scan(encode_key(10), None, limit=5)
        assert [key for key, _ in rows] == [
            encode_key(10 + i) for i in range(5)
        ]
        assert db.stats.scans == 1
        # Unbounded tail without a limit still works.
        assert len(db.scan(encode_key(45))) == 5
        # limit=0 returns nothing on both scan paths.
        assert db.scan(encode_key(10), None, limit=0) == []
        assert db.scan(encode_key(10), encode_key(40), limit=0) == []

    def test_seeked_open_ended_scan_matches_bounded_scan(self):
        # The open-ended path seeks its sources to `start`; it must
        # agree with the materializing bounded path from any offset,
        # across flushed/compacted/updated/deleted state.
        db = MiniRocks(
            Options(memtable_entries=16, block_entries=4, id_universe=1 << 32),
            rng=random.Random(15),
        )
        for index in range(400):
            db.put(encode_key(index), b"old")
        for index in range(0, 400, 7):
            db.delete(encode_key(index))
        for index in range(0, 400, 11):
            db.put(encode_key(index), b"new")
        far_end = encode_key(10**9)
        for offset in (0, 1, 123, 250, 399, 500):
            start = encode_key(offset)
            assert (
                db.scan(start, None, limit=25)
                == db.scan(start, far_end)[:25]
            )

    def test_cluster_scatter_gather_scan(self):
        from repro.distributed.cluster import ClusterSimulator

        sim = ClusterSimulator(3, small_options, cache_blocks=256, seed=9)
        for index in range(60):
            sim.put(encode_key(index), b"x%d" % index)
        rows = sim.scan(encode_key(20), None, limit=7)
        assert [key for key, _ in rows] == [
            encode_key(20 + i) for i in range(7)
        ]

    def test_cluster_scan_dedups_migrated_copies(self):
        # After SST migrations a key can surface on several nodes;
        # the scan must return one row per key, preferring the routed
        # owner's (get-consistent) view over stale migrated copies.
        from repro.distributed.cluster import ClusterSimulator

        def churn_options():
            return Options(
                memtable_entries=8,
                block_entries=4,
                level0_file_limit=2,
                id_universe=1 << 32,
            )

        sim = ClusterSimulator(3, churn_options, cache_blocks=256, seed=11)
        for index in range(200):
            sim.put(encode_key(index), b"old")
        sim.flush_all()
        sim.rebalance(max_moves=6)
        for index in range(200):
            sim.put(encode_key(index), b"new")
        rows = sim.scan(encode_key(0), None)
        keys = [key for key, _ in rows]
        assert len(keys) == len(set(keys)) == 200
        assert all(value == b"new" for _, value in rows)
        limited = sim.scan(encode_key(0), None, limit=50)
        assert [key for key, _ in limited] == [
            encode_key(i) for i in range(50)
        ]

    def test_tombstones_do_not_consume_the_scan_limit(self):
        # All deleted keys sort before the live ones: a limited scan
        # must still return `limit` live rows (tombstones ride along
        # outside the budget), on both store and cluster paths.
        from repro.distributed.cluster import ClusterSimulator
        from repro.kvstore.memtable import TOMBSTONE

        db = MiniRocks(small_options(), rng=random.Random(13))
        for index in range(20):
            db.put(encode_key(index), b"v")
        db.flush()
        for index in range(10):
            db.delete(encode_key(index))
        rows = db.scan(encode_key(0), None, limit=10)
        assert [key for key, _ in rows] == [
            encode_key(10 + i) for i in range(10)
        ]
        raw = db.scan(
            encode_key(0), None, limit=10, include_tombstones=True
        )
        assert sum(1 for _, v in raw if v != TOMBSTONE) == 10
        assert sum(1 for _, v in raw if v == TOMBSTONE) == 10

        sim = ClusterSimulator(2, small_options, cache_blocks=256, seed=13)
        for index in range(20):
            sim.put(encode_key(index), b"v")
        for index in range(10):
            sim.delete(encode_key(index))
        rows = sim.scan(encode_key(0), None, limit=10)
        assert [key for key, _ in rows] == [
            encode_key(10 + i) for i in range(10)
        ]

    def test_cluster_scan_does_not_resurrect_deleted_keys(self):
        # A deletion on the owner must beat a stale migrated copy: the
        # owner's tombstone has to survive into the coordinator merge.
        from repro.distributed.cluster import ClusterSimulator

        def churn_options():
            return Options(
                memtable_entries=8,
                block_entries=4,
                level0_file_limit=2,
                id_universe=1 << 32,
            )

        sim = ClusterSimulator(3, churn_options, cache_blocks=256, seed=12)
        for index in range(120):
            sim.put(encode_key(index), b"v")
        sim.flush_all()
        sim.rebalance(max_moves=6)
        deleted = [encode_key(i) for i in range(0, 120, 3)]
        for key in deleted:
            sim.delete(key)
        rows = dict(sim.scan(encode_key(0), None))
        for key in deleted:
            assert key not in rows, f"deleted key {key!r} resurrected"
            assert sim.get(key) is None
        assert len(rows) == 120 - len(deleted)

    def test_limited_cluster_scan_is_a_prefix_of_the_full_scan(self):
        # The frontier/pagination invariant: whatever per-node windows
        # get cut, a limited scatter-gather scan must return exactly
        # the first `limit` rows of the unlimited (fully resolved)
        # scan — no resurrected deletes, no stale values, no gaps.
        from repro.distributed.cluster import ClusterSimulator

        def churn_options():
            return Options(
                memtable_entries=8,
                block_entries=4,
                level0_file_limit=2,
                id_universe=1 << 32,
            )

        sim = ClusterSimulator(3, churn_options, cache_blocks=256, seed=14)
        for index in range(150):
            sim.put(encode_key(index), b"old")
        sim.flush_all()
        sim.rebalance(max_moves=8)
        for index in range(0, 150, 3):
            sim.delete(encode_key(index))
        for index in range(0, 150, 5):
            sim.put(encode_key(index), b"new")
        sim.rebalance(max_moves=8)
        full = sim.scan(encode_key(0), None)
        keys = [key for key, _ in full]
        assert len(keys) == len(set(keys))  # one winner per key
        for limit in (1, 2, 5, 17, 40, len(full), len(full) + 10):
            assert sim.scan(encode_key(0), None, limit=limit) == full[:limit]

    def test_limited_scan_retries_past_stale_filled_windows(self):
        # Adversarial layout: every exportable file is migrated off
        # node0, then all node0-owned keys are deleted — node1's
        # limited window leads with stale live copies that node0's
        # tombstones kill in the merge. The coordinator must widen its
        # per-node windows (frontier retry) rather than return deleted
        # keys or come up short.
        from repro.distributed.cluster import ClusterSimulator

        def churn_options():
            return Options(
                memtable_entries=4,
                block_entries=4,
                level0_file_limit=2,
                id_universe=1 << 32,
            )

        sim = ClusterSimulator(2, churn_options, cache_blocks=256, seed=1)
        for index in range(60):
            sim.put(encode_key(index), b"old")
        sim.flush_all()
        for node in sim.nodes:
            node.db.compact_all()
        donor, receiver = sim.nodes
        for level, sst in list(donor.exportable_files()):
            receiver.import_file(level, donor.export_file(level, sst))
        deleted = [
            encode_key(i)
            for i in range(60)
            if sim.node_for_key(encode_key(i)) is donor
        ]
        assert deleted  # the layout actually has donor-owned keys
        for key in deleted:
            sim.delete(key)

        rounds = []
        merge = sim._merge_node_scans
        sim._merge_node_scans = lambda start, end, per_node: (
            rounds.append(per_node) or merge(start, end, per_node)
        )
        full = sim.scan(encode_key(0), None)
        assert all(key not in dict(full) for key in deleted)
        rounds.clear()
        limited = sim.scan(encode_key(0), None, limit=3)
        assert limited == full[:3]
        assert len(rounds) > 1, "frontier retry never triggered"
        assert rounds[1] == rounds[0] * 2

    def test_run_workload_executes_rmw_and_scan(self):
        from repro.distributed.cluster import ClusterSimulator

        sim = ClusterSimulator(2, small_options, cache_blocks=256, seed=10)
        for index in range(20):
            sim.put(encode_key(index), b"seed")
        sim.run_workload(
            [
                ("rmw", encode_key(3), b"updated"),
                ("scan", encode_key(0), b"4"),
            ]
        )
        assert sim.get(encode_key(3)) == b"updated"
