"""Unit tests for the adaptive attacks (repro.adversary.attacks)."""


import pytest

from repro.adversary.adaptive import circular_gap
from repro.adversary.attacks import (
    ClosestPairAttack,
    GreedyGapAttack,
    RunSaturationAttack,
    closest_trailing_pair,
)
from repro.adversary.base import GameView
from repro.core.cluster import ClusterGenerator
from repro.errors import GameError
from repro.simulation.game import Game
from repro.simulation.montecarlo import estimate_collision_probability


def make_view(m, first_ids):
    view = GameView(m)
    for instance, value in enumerate(first_ids):
        view._record(instance, value, False)
    return view


class TestCircularGap:
    def test_forward_distance(self):
        assert circular_gap(3, 7, 10) == 4
        assert circular_gap(7, 3, 10) == 6
        assert circular_gap(5, 5, 10) == 0


class TestClosestTrailingPair:
    def test_identifies_trailing_instance(self):
        # IDs 10, 13, 50 on Z_100: closest forward gap is 10 -> 13.
        view = make_view(100, [10, 13, 50])
        trailing, leading, gap = closest_trailing_pair(view)
        assert (trailing, leading, gap) == (0, 1, 3)

    def test_wraparound_pair(self):
        view = make_view(100, [98, 1, 50])
        trailing, leading, gap = closest_trailing_pair(view)
        assert (trailing, leading, gap) == (0, 1, 3)

    def test_duplicate_first_ids(self):
        view = make_view(100, [42, 42])
        _, _, gap = closest_trailing_pair(view)
        assert gap == 0


class TestClosestPairAttack:
    def test_probes_then_locks_target(self):
        m = 1 << 16
        attack = ClosestPairAttack(n=4, d=20)
        game = Game(
            lambda mm, rr: ClusterGenerator(mm, rr),
            m,
            attack,
            seed=5,
            stop_on_collision=False,
            keep_transcript=True,
        )
        result = game.run()
        assert result.steps == 20
        instances = [instance for instance, _ in result.transcript]
        assert instances[:4] == [0, 1, 2, 3]
        # After probing, a single instance receives everything.
        assert len(set(instances[4:])) == 1

    def test_budget_validation(self):
        with pytest.raises(GameError):
            ClosestPairAttack(n=1, d=10)
        with pytest.raises(GameError):
            ClosestPairAttack(n=8, d=4)

    def test_beats_oblivious_baseline(self):
        """The heart of Lemma 7: measurable amplification at small m."""
        m, n, d = 1 << 14, 8, 256
        adaptive = estimate_collision_probability(
            lambda mm, rr: ClusterGenerator(mm, rr),
            m,
            lambda rng: ClosestPairAttack(n=n, d=d),
            trials=1200,
            seed=3,
        )
        # Oblivious at the same budget: nd/m = 0.125; Lemma 7 predicts
        # ~n²d/m (clamped) for the attack. Require a clear 2x gap.
        assert adaptive.probability > 2 * (n * d / m)


class TestGreedyGapAttack:
    def test_targets_the_imminent_collision(self):
        m = 1 << 12
        attack = GreedyGapAttack(n=3, d=10)
        # Probe phase first.
        game = Game(
            lambda mm, rr: ClusterGenerator(mm, rr),
            m,
            attack,
            seed=9,
            stop_on_collision=False,
            keep_transcript=True,
        )
        result = game.run()
        assert result.steps == 10

    def test_exploit_chooses_min_gap_instance(self):
        view = make_view(1000, [0, 10, 500])
        attack = GreedyGapAttack(n=3, d=100)
        # Instance 0's next ID (1) is 9 away from instance 1's ID (10);
        # instance 1's next (11) is 489 from 500; instance 2's next
        # (501) is 499 from 0 (wrapping). Best is instance 0.
        assert attack.exploit(view) == 0

    def test_incremental_ingestion_consistency(self):
        view = make_view(1000, [5, 300])
        attack = GreedyGapAttack(n=2, d=10)
        first = attack.exploit(view)
        view._record(first, 6, False)
        second = attack.exploit(view)
        assert second in (0, 1)

    def test_attack_is_at_least_as_strong_as_closest_pair_on_cluster(self):
        m, n, d = 1 << 14, 6, 192
        greedy = estimate_collision_probability(
            lambda mm, rr: ClusterGenerator(mm, rr),
            m,
            lambda rng: GreedyGapAttack(n=n, d=d),
            trials=400,
            seed=4,
        )
        closest = estimate_collision_probability(
            lambda mm, rr: ClusterGenerator(mm, rr),
            m,
            lambda rng: ClosestPairAttack(n=n, d=d),
            trials=400,
            seed=4,
        )
        assert greedy.probability >= closest.probability - 0.08


class TestRunSaturationAttack:
    def test_equalizes_before_exploiting(self):
        m = 1 << 14
        attack = RunSaturationAttack(n=4, d=40, equalize_fraction=1.0)
        game = Game(
            lambda mm, rr: ClusterGenerator(mm, rr),
            m,
            attack,
            seed=2,
            stop_on_collision=False,
        )
        result = game.run()
        demands = result.profile.demands
        assert max(demands) - min(demands) <= 1

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            RunSaturationAttack(n=2, d=10, equalize_fraction=1.5)
