"""Codec and framing tests for the RPC wire protocol.

Pure in-memory tests (no sockets) — the live-server counterparts,
including malformed frames against a running ``RPCServer``, live in
``test_rpc_network.py`` behind the ``network`` marker.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import protocol
from repro.distributed.protocol import (
    HEADER_SIZE,
    OP_TO_CODE,
    decode_attach,
    decode_frame,
    decode_kv,
    decode_node,
    encode_attach,
    encode_frame,
    encode_kv,
    encode_node,
    read_frame,
)
from repro.errors import (
    ClusterUnavailableError,
    RPCConnectionError,
    RPCError,
    RPCProtocolError,
    RPCTimeoutError,
)


def feed_reader(*chunks: bytes, eof: bool = True) -> asyncio.StreamReader:
    """A StreamReader pre-loaded with raw bytes."""
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    if eof:
        reader.feed_eof()
    return reader


class TestErrorHierarchy:
    """The driver's failure accounting leans on these relationships."""

    def test_timeout_and_connect_errors_are_unavailability(self):
        assert issubclass(RPCTimeoutError, ClusterUnavailableError)
        assert issubclass(RPCConnectionError, ClusterUnavailableError)

    def test_protocol_error_is_an_rpc_error(self):
        assert issubclass(RPCProtocolError, RPCError)
        assert not issubclass(RPCProtocolError, ClusterUnavailableError)


class TestFrameCodec:
    def test_roundtrip(self):
        frame = encode_frame(7, OP_TO_CODE["put"], b"body bytes")
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4 == HEADER_SIZE + len(b"body bytes")
        assert decode_frame(frame[4:]) == (7, OP_TO_CODE["put"], b"body bytes")

    def test_empty_body_roundtrip(self):
        frame = encode_frame(2**64 - 1, 0xFF, b"")
        assert decode_frame(frame[4:]) == (2**64 - 1, 0xFF, b"")

    def test_encode_rejects_out_of_range_fields(self):
        with pytest.raises(RPCProtocolError):
            encode_frame(-1, 0, b"")
        with pytest.raises(RPCProtocolError):
            encode_frame(2**64, 0, b"")
        with pytest.raises(RPCProtocolError):
            encode_frame(0, 256, b"")

    def test_encode_rejects_oversized_body(self):
        with pytest.raises(RPCProtocolError):
            encode_frame(1, 0, b"x" * 100, max_frame=64)
        # Exactly at the cap is fine.
        encode_frame(1, 0, b"x" * (64 - HEADER_SIZE), max_frame=64)

    def test_decode_rejects_short_frames(self):
        for size in range(HEADER_SIZE):
            with pytest.raises(RPCProtocolError):
                decode_frame(b"\x00" * size)


class TestBodyCodecs:
    def test_kv_roundtrip(self):
        assert decode_kv(encode_kv(b"key", b"value")) == (b"key", b"value")
        assert decode_kv(encode_kv(b"", b"")) == (b"", b"")

    def test_kv_truncation_and_trailing_junk(self):
        body = encode_kv(b"abc", b"defg")
        with pytest.raises(RPCProtocolError):
            decode_kv(body[:3])  # inside the key-length prefix
        with pytest.raises(RPCProtocolError):
            decode_kv(body[:-1])  # value cut short
        with pytest.raises(RPCProtocolError):
            decode_kv(body + b"!")  # trailing junk

    def test_attach_roundtrip_and_size_check(self):
        assert decode_attach(encode_attach(3, 2**64 - 1)) == (3, 2**64 - 1)
        with pytest.raises(RPCProtocolError):
            decode_attach(b"\x00" * 11)
        with pytest.raises(RPCProtocolError):
            decode_attach(b"\x00" * 13)
        with pytest.raises(RPCProtocolError):
            encode_attach(2**32, 0)

    def test_node_roundtrip_and_size_check(self):
        assert decode_node(encode_node(4)) == 4
        with pytest.raises(RPCProtocolError):
            decode_node(b"\x00" * 3)
        with pytest.raises(RPCProtocolError):
            encode_node(-1)


class TestReadFrame:
    def run(self, coro):
        return asyncio.run(coro)

    def test_reads_back_to_back_frames(self):
        first = encode_frame(1, 0x10, b"a")
        second = encode_frame(2, 0x11, b"bb")

        async def scenario():
            reader = feed_reader(first + second)
            frames = [await read_frame(reader), await read_frame(reader)]
            assert await read_frame(reader) is None  # clean EOF
            return frames

        one, two = self.run(scenario())
        assert decode_frame(one) == (1, 0x10, b"a")
        assert decode_frame(two) == (2, 0x11, b"bb")

    def test_oversized_length_prefix_rejected_before_body_read(self):
        # The prefix claims more than max_frame; read_frame must raise
        # without waiting for (or allocating) the body — the reader
        # holds only the 4 prefix bytes and is NOT at EOF.
        huge = (protocol.DEFAULT_MAX_FRAME + 1).to_bytes(4, "big")

        async def scenario():
            reader = feed_reader(huge, eof=False)
            with pytest.raises(RPCProtocolError, match="exceeds max frame"):
                await read_frame(reader)

        self.run(scenario())

    def test_undersized_length_prefix_rejected(self):
        async def scenario():
            reader = feed_reader((HEADER_SIZE - 1).to_bytes(4, "big"))
            with pytest.raises(RPCProtocolError, match="shorter than"):
                await read_frame(reader)

        self.run(scenario())

    def test_disconnect_inside_prefix(self):
        async def scenario():
            reader = feed_reader(b"\x00\x00")
            with pytest.raises(RPCProtocolError, match="length prefix"):
                await read_frame(reader)

        self.run(scenario())

    def test_disconnect_mid_frame(self):
        frame = encode_frame(9, 0x10, b"payload")

        async def scenario():
            reader = feed_reader(frame[:-3])
            with pytest.raises(RPCProtocolError, match="mid-frame"):
                await read_frame(reader)

        self.run(scenario())


class TestFuzz:
    """Property tests: decoders never raise anything but
    RPCProtocolError, and roundtrips are lossless."""

    @given(
        msg_id=st.integers(min_value=0, max_value=2**64 - 1),
        code=st.integers(min_value=0, max_value=255),
        body=st.binary(max_size=512),
    )
    @settings(max_examples=200, deadline=None)
    def test_frame_roundtrip(self, msg_id, code, body):
        frame = encode_frame(msg_id, code, body)
        assert decode_frame(frame[4:]) == (msg_id, code, body)

    @given(key=st.binary(max_size=256), value=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_kv_roundtrip(self, key, value):
        assert decode_kv(encode_kv(key, value)) == (key, value)

    @given(blob=st.binary(max_size=600))
    @settings(max_examples=300, deadline=None)
    def test_decoders_never_crash_on_garbage(self, blob):
        for decoder in (decode_frame, decode_kv, decode_attach, decode_node):
            try:
                decoder(blob)
            except RPCProtocolError:
                pass  # the one sanctioned failure mode

    @given(blob=st.binary(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_read_frame_never_crashes_on_garbage(self, blob):
        async def scenario():
            reader = feed_reader(blob)
            try:
                while await read_frame(reader, max_frame=1024) is not None:
                    pass
            except RPCProtocolError:
                pass

        asyncio.run(scenario())

    @given(
        frames=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**64 - 1),
                st.integers(min_value=0, max_value=255),
                st.binary(max_size=64),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_concatenated_frames_reframe_exactly(self, frames):
        stream = b"".join(encode_frame(m, c, b) for m, c, b in frames)

        async def scenario():
            reader = feed_reader(stream)
            out = []
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return out
                out.append(decode_frame(frame))

        assert asyncio.run(scenario()) == frames
