"""The SimulationPlan seam (repro.simulation.plan) and adaptive stopping.

Four guarantees are under test:

* **Split invariance** — for a fixed plan the estimate (including the
  adaptive stopping point) is bit-identical across ``workers=``
  counts, ``round_size`` choices, and the batched fast path, on both
  RNG universes (python/batched and numpy).
* **Adaptive precision** — with ``target_halfwidth`` set, sampling
  stops at the first Wilson checkpoint at or under the target
  (validated against analytically known probabilities from
  :mod:`repro.analysis.exact`), and an unreachable target runs the cap
  exactly while still returning a valid Wilson interval.
* **Registry** — the three built-in engines self-register, unknown
  names fail with the known ones listed, and third-party engines can
  register.
* **Deprecated shims** — the pre-plan ``workers=``/``batch=``/
  ``engine=`` kwargs and ``ExperimentConfig(workers=, engine=)`` fold
  into plans with a :class:`DeprecationWarning` and unchanged results,
  and the numpy-missing fallback warning fires once per process.

All tests here carry the ``plan`` marker (CI's dedicated fast lane).
"""

import warnings

import pytest

from repro.adversary.attacks import ClosestPairAttack
from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import cluster_collision_probability
from repro.errors import ConfigurationError
from repro.experiments.framework import ExperimentConfig
from repro.simulation import batch as batch_module
from repro.simulation import vectorized
from repro.simulation.batch import AttackFactory, ObliviousFactory, SpecFactory
from repro.simulation.montecarlo import (
    estimate_collision_probability,
    estimate_profile_collision,
)
from repro.simulation.plan import (
    Engine,
    EngineRegistry,
    RoundResult,
    SimulationPlan,
    TrialTask,
    available_engines,
    get_engine,
    iter_rounds,
    run_plan,
)
from repro.simulation.stats import wilson_interval

pytestmark = pytest.mark.plan

M = 1 << 14
PROFILE = DemandProfile.of(48, 24, 12, 6)


def _estimate(plan, trials=2000, seed=17, spec="cluster"):
    return estimate_profile_collision(
        SpecFactory(spec), M, PROFILE, trials=trials, seed=seed, plan=plan
    )


# ---------------------------------------------------------------------------
# Split invariance: same plan => bit-identical estimate
# ---------------------------------------------------------------------------


class TestSplitInvariance:
    @pytest.mark.parametrize("engine", ["python", "numpy"])
    def test_adaptive_identical_across_workers_and_rounds(self, engine):
        if engine == "numpy" and not vectorized.numpy_available():
            pytest.skip("NumPy not installed")
        base = SimulationPlan(engine=engine, target_halfwidth=0.02)
        estimates = [
            _estimate(base.evolve(workers=workers, round_size=round_size))
            for workers in (None, 2, 3)
            for round_size in (None, 7, 64, 1000)
        ]
        assert all(e == estimates[0] for e in estimates)
        # the plan stopped early, so the invariance covered >1 checkpoint
        assert estimates[0].trials < 2000

    def test_adaptive_identical_across_batch_modes(self):
        plan = SimulationPlan(target_halfwidth=0.02)
        assert _estimate(plan) == _estimate(plan.evolve(batch=False))

    def test_batched_engine_bit_identical_to_python(self):
        fixed = SimulationPlan()
        assert _estimate(fixed) == _estimate(fixed.evolve(engine="batched"))
        adaptive = fixed.evolve(target_halfwidth=0.02)
        assert _estimate(adaptive) == _estimate(
            adaptive.evolve(engine="batched")
        )

    def test_adaptive_attack_workload_identical_across_workers(self):
        plan = SimulationPlan(target_halfwidth=0.05)
        results = [
            estimate_collision_probability(
                SpecFactory("cluster"),
                M,
                AttackFactory(ClosestPairAttack, n=6, d=96),
                trials=400,
                seed=23,
                plan=plan.evolve(workers=workers),
            )
            for workers in (None, 2, 4)
        ]
        assert results[0] == results[1] == results[2]

    def test_adaptive_result_is_a_fixed_mode_prefix(self):
        """Stopping early must not change what was sampled: the adaptive
        estimate equals the fixed-mode estimate at its own stop count."""
        adaptive = _estimate(SimulationPlan(target_halfwidth=0.02))
        fixed = _estimate(SimulationPlan(), trials=adaptive.trials)
        assert adaptive == fixed


# ---------------------------------------------------------------------------
# Adaptive precision: early stop and the cap path
# ---------------------------------------------------------------------------


class TestAdaptiveStopping:
    def test_early_stop_honors_target_on_known_probability(self):
        exact = float(cluster_collision_probability(M, PROFILE))
        target = 0.03
        estimate = _estimate(
            SimulationPlan(target_halfwidth=target), trials=50_000
        )
        assert estimate.halfwidth <= target
        assert estimate.trials < 50_000
        # the interval it stopped at still covers the analytic truth
        assert estimate.ci_low <= exact <= estimate.ci_high

    def test_tighter_target_needs_more_trials(self):
        loose = _estimate(
            SimulationPlan(target_halfwidth=0.05), trials=100_000
        )
        tight = _estimate(
            SimulationPlan(target_halfwidth=0.01), trials=100_000
        )
        assert tight.trials > loose.trials
        assert tight.halfwidth <= 0.01

    def test_unreachable_target_runs_the_cap_with_valid_wilson_ci(self):
        cap = 700
        estimate = _estimate(
            SimulationPlan(target_halfwidth=1e-6), trials=cap
        )
        assert estimate.trials == cap
        low, high = wilson_interval(
            estimate.successes, cap, estimate.confidence
        )
        assert (estimate.ci_low, estimate.ci_high) == (low, high)
        # and the cap path is bit-identical to plain fixed mode
        assert estimate == _estimate(SimulationPlan(), trials=cap)

    def test_checkpoint_schedule_is_pure_and_capped(self):
        plan = SimulationPlan(
            target_halfwidth=0.01, min_trials=100, growth=2.0
        )
        assert list(plan.checkpoints(1000)) == [100, 200, 400, 800, 1000]
        assert list(plan.checkpoints(64)) == [64]
        assert list(SimulationPlan().checkpoints(500)) == [500]

    def test_resolve_cap_precedence(self):
        assert SimulationPlan().resolve_cap(300) == 300
        assert SimulationPlan(max_trials=200).resolve_cap(300) == 200
        assert SimulationPlan(max_trials=200).resolve_cap(150) == 150
        assert SimulationPlan(max_trials=200).resolve_cap(None) == 200
        with pytest.raises(ConfigurationError):
            SimulationPlan().resolve_cap(None)
        with pytest.raises(ConfigurationError):
            SimulationPlan().resolve_cap(0)

    def test_plan_validation(self):
        for bad in (
            dict(engine=""),
            dict(workers=-1),
            dict(round_size=0),
            dict(confidence=1.0),
            dict(target_halfwidth=0.0),
            dict(target_halfwidth=1.5),
            dict(min_trials=0),
            dict(growth=1.0),
            dict(max_trials=0),
        ):
            with pytest.raises(ConfigurationError):
                SimulationPlan(**bad)

    def test_iter_rounds_streams_the_full_cap(self):
        plan = SimulationPlan(round_size=64, target_halfwidth=0.01)
        task = TrialTask(
            factory=SpecFactory("cluster"),
            m=M,
            adversary_factory=ObliviousFactory(PROFILE),
            stop_on_collision=False,
        )
        rounds = list(iter_rounds(plan, task, seed=17, trials=300))
        assert [r.start for r in rounds] == [0, 64, 128, 192, 256]
        assert rounds[-1].stop == 300
        assert sum(r.trials for r in rounds) == 300
        fixed = _estimate(SimulationPlan(), trials=300)
        assert sum(r.collisions for r in rounds) == fixed.successes


# ---------------------------------------------------------------------------
# Engine registry
# ---------------------------------------------------------------------------


class TestEngineRegistry:
    def test_builtin_engines_registered(self):
        names = available_engines()
        for name in ("python", "batched", "numpy"):
            assert name in names
            assert get_engine(name).name == name

    def test_unknown_engine_lists_known_names(self):
        with pytest.raises(ConfigurationError, match="python"):
            get_engine("turbo")
        with pytest.raises(ConfigurationError):
            run_plan(
                SimulationPlan(engine="turbo"),
                TrialTask(
                    factory=SpecFactory("cluster"),
                    m=M,
                    adversary_factory=ObliviousFactory(PROFILE),
                ),
                trials=10,
            )

    def test_third_party_engine_pluggable(self):
        class ConstantEngine(Engine):
            name = "constant"

            def run_rounds(self, plan, task, seed, start, stop):
                yield RoundResult(start, stop, 0)

        registry = EngineRegistry()
        registry.register(ConstantEngine())
        assert "constant" in registry.names()
        assert registry.get("constant").name == "constant"

    def test_registered_engine_executes_through_its_own_run_rounds(
        self, monkeypatch
    ):
        """A third-party engine must actually run — never silently fall
        back to the python loop with wrong-universe counts."""
        from repro.simulation import plan as plan_module

        class EveryTrialCollides(Engine):
            name = "always"

            def run_rounds(self, plan, task, seed, start, stop):
                yield RoundResult(start, stop, stop - start)

        monkeypatch.setattr(plan_module, "REGISTRY", EngineRegistry())
        plan_module.register_engine(EveryTrialCollides())
        estimate = _estimate(SimulationPlan(engine="always"), trials=50)
        assert estimate.successes == 50
        assert (
            batch_module.run_trials(
                SpecFactory("cluster"), M, ObliviousFactory(PROFILE),
                trials=30, engine="always",
            )
            == 30
        )

    def test_misaligned_engine_rounds_rejected(self, monkeypatch):
        """Rounds that do not tile [0, cap) must fail loudly, never
        silently inflate the estimate (successes > trials)."""
        from repro.simulation import plan as plan_module

        class Straddling(Engine):
            name = "straddling"

            def run_rounds(self, plan, task, seed, start, stop):
                yield RoundResult(0, 128, 10)
                yield RoundResult(128, stop + 8, 300)

        class UnderCovering(Engine):
            name = "under"

            def run_rounds(self, plan, task, seed, start, stop):
                yield RoundResult(0, 128, 10)

        monkeypatch.setattr(plan_module, "REGISTRY", EngineRegistry())
        plan_module.register_engine(Straddling())
        plan_module.register_engine(UnderCovering())
        task = TrialTask(
            factory=SpecFactory("cluster"),
            m=M,
            adversary_factory=ObliviousFactory(PROFILE),
        )
        with pytest.raises(ConfigurationError, match="tile"):
            run_plan(SimulationPlan(engine="straddling"), task, trials=512)
        with pytest.raises(ConfigurationError, match="covered only"):
            run_plan(SimulationPlan(engine="under"), task, trials=512)

    def test_count_range_rejects_unknown_engine_kinds(self):
        with pytest.raises(ConfigurationError, match="run_rounds"):
            batch_module.count_range(
                SpecFactory("cluster"), M, ObliviousFactory(PROFILE),
                0, 0, 10, engine="numpyy",
            )

    def test_nameless_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineRegistry().register(Engine())


# ---------------------------------------------------------------------------
# Deprecated shims and warning hygiene
# ---------------------------------------------------------------------------


class TestDeprecatedShims:
    def test_kwargs_warn_and_match_plan_results(self):
        with pytest.warns(DeprecationWarning, match="SimulationPlan"):
            legacy = estimate_profile_collision(
                SpecFactory("cluster"), M, PROFILE,
                trials=200, seed=17, workers=2,
            )
        assert legacy == _estimate(SimulationPlan(workers=2), trials=200)

    def test_engine_kwarg_warns(self):
        with pytest.warns(DeprecationWarning, match="engine"):
            estimate_profile_collision(
                SpecFactory("cluster"), M, PROFILE,
                trials=100, seed=1, engine="python",
            )

    def test_batch_kwarg_warns_on_adaptive_path_too(self):
        with pytest.warns(DeprecationWarning, match="batch"):
            estimate_collision_probability(
                SpecFactory("cluster"), M,
                ObliviousFactory(PROFILE),
                trials=100, seed=1, stop_on_collision=False, batch=True,
            )

    def test_experiment_config_shim_folds_into_plan(self):
        with pytest.warns(DeprecationWarning, match="SimulationPlan"):
            config = ExperimentConfig(workers=3, engine="numpy")
        assert config.plan.workers == 3
        assert config.plan.engine == "numpy"
        clean = ExperimentConfig(plan=SimulationPlan(workers=3))
        assert clean.plan.workers == 3

    def test_plan_api_emits_no_deprecation_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _estimate(SimulationPlan(workers=2), trials=100)
            ExperimentConfig(plan=SimulationPlan())

    def test_numpy_fallback_warns_once_per_process(self, monkeypatch):
        monkeypatch.setattr(vectorized, "_np", None)
        monkeypatch.setattr(batch_module, "_numpy_fallback_warned", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = _estimate(SimulationPlan(engine="numpy"), trials=50)
            second = _estimate(SimulationPlan(engine="numpy"), trials=50)
        runtime = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime) == 1, runtime
        assert "NumPy is not installed" in str(runtime[0].message)
        # the fallback really ran the python universe
        assert first == second == _estimate(SimulationPlan(), trials=50)
