"""The parallel batched Monte-Carlo engine (repro.simulation.batch).

Three guarantees are under test:

* **Determinism** — ``estimate_collision_probability`` under a
  ``SimulationPlan(workers=N)`` returns a bit-identical
  :class:`Estimate` for every ``N`` (and for ``batch=True``/``False``),
  because trial outcomes depend only on the root seed and trial index.
* **Batch equivalence** — ``generate_batch`` emits exactly the IDs
  repeated ``next_id`` calls would, for every registered algorithm,
  under any chunking.
* **Exhaustion mid-batch** — a batch that outlives the instance's
  capacity returns the partial prefix, and the generator stays in the
  exhausted state afterwards.
"""

import pickle
import random

import pytest

from repro.adversary.attacks import ClosestPairAttack
from repro.adversary.profiles import DemandProfile
from repro.core.bins_star import BinsStarGenerator
from repro.core.registry import make_generator
from repro.errors import ConfigurationError, IDSpaceExhaustedError
from repro.simulation.batch import (
    AttackFactory,
    ObliviousFactory,
    SpecFactory,
    play_trial,
    resolve_workers,
    run_trials,
)
from repro.simulation.montecarlo import (
    estimate_collision_probability,
    estimate_profile_collision,
)
from repro.simulation.plan import SimulationPlan

#: One spec per registered algorithm family (parameterized ones get
#: concrete arguments).
ALL_SPECS = ["random", "cluster", "bins:7", "cluster_star", "bins_star", "skew:4:9"]


class TestGenerateBatchEquivalence:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    @pytest.mark.parametrize("m", [16, 64, 257])
    def test_matches_repeated_next_id(self, spec, m):
        serial = make_generator(spec, m, random.Random(99))
        reference = []
        try:
            while True:
                reference.append(serial.next_id())
        except IDSpaceExhaustedError:
            pass

        batched = make_generator(spec, m, random.Random(99))
        produced = []
        for chunk in (1, 3, 5, 100, 7, 4 * m):
            produced.extend(batched.generate_batch(chunk))
        assert produced == reference

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_single_full_batch(self, spec):
        m = 128
        serial = make_generator(spec, m, random.Random(5))
        reference = []
        try:
            while True:
                reference.append(serial.next_id())
        except IDSpaceExhaustedError:
            pass
        batched = make_generator(spec, m, random.Random(5))
        assert batched.generate_batch(m + 50) == reference

    def test_negative_count_rejected(self):
        generator = make_generator("cluster", 64, random.Random(0))
        with pytest.raises(ConfigurationError):
            generator.generate_batch(-1)

    def test_zero_count_is_empty(self):
        generator = make_generator("random", 64, random.Random(0))
        assert generator.generate_batch(0) == []
        assert generator.count == 0


class TestExhaustionMidBatch:
    def test_partial_batch_then_empty(self):
        # Bins* without fallback exhausts at its scheduled capacity,
        # well before m — the classic mid-batch exhaustion case.
        generator = BinsStarGenerator(64, random.Random(3))
        capacity = generator.scheduled_capacity
        ids = generator.generate_batch(capacity + 10)
        assert len(ids) == capacity
        assert generator.generate_batch(4) == []
        with pytest.raises(IDSpaceExhaustedError):
            generator.next_id()

    def test_exhaustion_preserves_serial_prefix(self):
        serial = BinsStarGenerator(64, random.Random(3))
        reference = []
        try:
            while True:
                reference.append(serial.next_id())
        except IDSpaceExhaustedError:
            pass
        batched = BinsStarGenerator(64, random.Random(3))
        assert batched.generate_batch(10_000) == reference

    def test_trial_stops_at_exhaustion_like_the_game(self):
        # Demand far beyond capacity: batched and game-loop trials must
        # agree on the collision outcome trial by trial.
        profile = DemandProfile.of(60, 60, 60)
        factory = SpecFactory("bins_star")
        for trial in range(20):
            loop = play_trial(
                factory, 64, ObliviousFactory(profile), 11, trial,
                stop_on_collision=False, batch=False,
            )
            fast = play_trial(
                factory, 64, ObliviousFactory(profile), 11, trial,
                stop_on_collision=False, batch=True,
            )
            assert loop == fast


class TestParallelDeterminism:
    @pytest.mark.parametrize("spec", ["cluster", "cluster_star"])
    def test_profile_estimate_identical_across_workers(self, spec):
        profile = DemandProfile.of(48, 24, 12, 6)
        m = 1 << 14
        estimates = [
            estimate_profile_collision(
                SpecFactory(spec), m, profile, trials=120, seed=17,
                plan=SimulationPlan(workers=workers, batch=batch),
            )
            for workers in (1, 2, 8)
            for batch in (False, True)
        ]
        assert all(e == estimates[0] for e in estimates)
        # and sanity: some collisions at this density, deterministically
        assert estimates[0].trials == 120

    def test_adaptive_estimate_identical_across_workers(self):
        kwargs = dict(trials=60, seed=23)
        results = [
            estimate_collision_probability(
                SpecFactory("cluster"), 1 << 14,
                AttackFactory(ClosestPairAttack, n=6, d=96),
                plan=SimulationPlan(workers=workers), **kwargs,
            )
            for workers in (1, 2, 8)
        ]
        assert results[0] == results[1] == results[2]

    def test_matches_legacy_lambda_path(self):
        # The picklable shims must not change what gets estimated.
        profile = DemandProfile.of(32, 16)
        m = 1 << 12
        legacy = estimate_profile_collision(
            lambda mm, rr: make_generator("cluster", mm, rr),
            m, profile, trials=150, seed=9,
            plan=SimulationPlan(batch=False),
        )
        shimmed = estimate_profile_collision(
            SpecFactory("cluster"), m, profile,
            trials=150, seed=9, plan=SimulationPlan(workers=4),
        )
        assert legacy == shimmed

    def test_unpicklable_factory_falls_back_with_warning(self):
        profile = DemandProfile.of(8, 8)
        with pytest.warns(RuntimeWarning, match="picklable"):
            estimate_profile_collision(
                lambda mm, rr: make_generator("cluster", mm, rr),
                1 << 12, profile, trials=10, seed=1,
                plan=SimulationPlan(workers=2),
            )

    def test_run_trials_validation(self):
        with pytest.raises(ConfigurationError):
            run_trials(
                SpecFactory("cluster"), 64,
                ObliviousFactory(DemandProfile.of(1, 1)), trials=0,
            )

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5
        assert resolve_workers(0) >= 1  # one per CPU
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)


class TestFactoryShims:
    def test_shims_are_picklable(self):
        for shim in (
            SpecFactory("bins:16"),
            ObliviousFactory(DemandProfile.of(4, 4)),
            AttackFactory(ClosestPairAttack, n=4, d=32),
        ):
            clone = pickle.loads(pickle.dumps(shim))
            assert clone == shim

    def test_spec_factory_builds_the_spec(self):
        generator = SpecFactory("bins:16")(1 << 10, random.Random(1))
        assert generator.name == "bins"
        assert generator.k == 16

    def test_attack_factory_builds_fresh_instances(self):
        factory = AttackFactory(ClosestPairAttack, n=4, d=32)
        a = factory(random.Random(1))
        b = factory(random.Random(2))
        assert a is not b
        assert isinstance(a, ClosestPairAttack)
