"""Replication, quorum R/W, fault injection, and ring-routing tests.

Covers the PR-5 serving layer: consistent-hash ring stability, quorum
reads over divergent replicas, last-write-wins + read-repair
convergence, hinted-handoff replay on recovery, scatter-gather scans
through node death, and the chaos-schedule determinism contract of the
workload driver (the ``chaos``-marked classes run in CI's dedicated
fault-injection lane).
"""

import itertools
import random

import pytest

from repro.distributed.cluster import ClusterSimulator, decode_envelope
from repro.distributed.ring import HashRing
from repro.errors import ClusterUnavailableError, ConfigurationError
from repro.kvstore.options import Options
from repro.workloads.driver import (
    ChaosEvent,
    DriverConfig,
    WorkloadDriver,
    cluster_target_factory,
    flush_and_report,
    store_target_factory,
)
from repro.workloads.ycsb import WorkloadSpec, load_phase, run_phase


def small_options(**overrides):
    defaults = dict(
        memtable_entries=8,
        block_entries=4,
        level0_file_limit=2,
        id_universe=1 << 32,
        id_algorithm="cluster",
        bloom_bits_per_key=0,
    )
    defaults.update(overrides)
    return Options(**defaults)


def key_with_primary(sim, node, start=0):
    """First ``k{i}`` key whose ring primary is ``node``."""
    for index in itertools.count(start):
        key = f"k{index:04d}".encode()
        if sim.node_for_key(key) is node:
            return key
    raise AssertionError("unreachable")


class TestHashRing:
    def test_preference_list_distinct_members(self):
        ring = HashRing([f"n{i}" for i in range(5)])
        for key in (b"a", b"b", b"hello", b"user42"):
            prefs = ring.preference_list(key, 3)
            assert len(prefs) == len(set(prefs)) == 3
            assert prefs[0] == ring.primary(key)

    def test_routing_is_deterministic_and_order_insensitive(self):
        names = [f"n{i}" for i in range(6)]
        forward = HashRing(names)
        shuffled = HashRing(list(reversed(names)))
        for index in range(200):
            key = f"k{index}".encode()
            assert forward.preference_list(key, 3) == shuffled.preference_list(key, 3)

    def test_adding_a_node_moves_about_one_nth_of_keys(self):
        # The ring's raison d'être: joining member n+1 of n+1 remaps
        # ~1/(n+1) of the key space (modulo routing remaps ~n/(n+1)).
        n = 6
        keys = [f"k{i}".encode() for i in range(4000)]
        ring = HashRing([f"n{i}" for i in range(n)])
        before = {key: ring.primary(key) for key in keys}
        ring.add_node("n_new")
        moved = sum(1 for key in keys if ring.primary(key) != before[key])
        expected = len(keys) / (n + 1)
        assert moved > 0
        assert moved <= expected * 1.6, (
            f"{moved} keys moved; a stable ring should move ~{expected:.0f}"
        )
        # Every moved key moved *to* the new member, never sideways.
        for key in keys:
            if ring.primary(key) != before[key]:
                assert ring.primary(key) == "n_new"

    def test_remove_restores_prior_mapping(self):
        keys = [f"k{i}".encode() for i in range(500)]
        ring = HashRing(["a", "b", "c", "d"])
        before = {key: ring.preference_list(key, 2) for key in keys}
        ring.add_node("e")
        ring.remove_node("e")
        assert {key: ring.preference_list(key, 2) for key in keys} == before

    def test_validation(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(ConfigurationError):
            ring.preference_list(b"k", 3)  # rf > members
        with pytest.raises(ConfigurationError):
            ring.preference_list(b"k", 0)
        with pytest.raises(ConfigurationError):
            ring.add_node("a")  # duplicate
        with pytest.raises(ConfigurationError):
            ring.remove_node("zzz")
        with pytest.raises(ConfigurationError):
            HashRing(vnodes=0)


class TestQuorumReplication:
    def test_writes_land_on_rf_replicas(self):
        sim = ClusterSimulator(5, small_options, seed=1, replication_factor=3)
        for index in range(40):
            sim.put(f"k{index:04d}".encode(), b"v%d" % index)
        for index in range(40):
            key = f"k{index:04d}".encode()
            copies = sum(
                1 for node in sim.preference_nodes(key)
                if node.get(key) is not None
            )
            assert copies == 3
            assert sim.get(key) == b"v%d" % index

    def test_delete_is_a_versioned_tombstone(self):
        sim = ClusterSimulator(4, small_options, seed=2, replication_factor=2)
        sim.put(b"k1", b"v1")
        sim.put(b"k2", b"v2")
        sim.delete(b"k1")
        assert sim.get(b"k1") is None
        assert sim.get(b"k2") == b"v2"
        assert dict(sim.scan(b"k")) == {b"k2": b"v2"}
        # The tombstone is a real versioned row on every replica, so
        # LWW ordering applies to deletes too.
        for node in sim.preference_nodes(b"k1"):
            stored = node.get(b"k1")
            assert stored is not None
            _version, flag, _payload = decode_envelope(stored)
            assert flag == 1

    def test_serving_continues_through_one_node_death(self):
        sim = ClusterSimulator(5, small_options, seed=3, replication_factor=3)
        for index in range(30):
            sim.put(f"k{index:04d}".encode(), b"before")
        sim.kill(1)
        for index in range(60):
            sim.put(f"k{index:04d}".encode(), b"after")
        for index in range(60):
            assert sim.get(f"k{index:04d}".encode()) == b"after"
        report = sim.report()
        assert report.dead_nodes == 1
        assert report.hints_outstanding > 0  # node1's missed writes queued

    def test_unavailable_without_quorum(self):
        sim = ClusterSimulator(3, small_options, seed=4)  # RF=1
        victim = sim.nodes[1]
        key = key_with_primary(sim, victim)
        sim.put(key, b"v")
        sim.kill(victim)
        with pytest.raises(ClusterUnavailableError):
            sim.get(key)
        with pytest.raises(ClusterUnavailableError):
            sim.put(key, b"v2")
        # RF=3, R=W=2: losing two of a key's three replicas is an outage.
        sim3 = ClusterSimulator(4, small_options, seed=5, replication_factor=3)
        key = b"k0000"
        replicas = sim3.preference_nodes(key)
        sim3.kill(replicas[0])
        sim3.kill(replicas[1])
        with pytest.raises(ClusterUnavailableError):
            sim3.get(key)
        with pytest.raises(ClusterUnavailableError):
            sim3.put(key, b"v")

    def test_quorum_read_outvotes_stale_replica_and_repairs_it(self):
        sim = ClusterSimulator(5, small_options, seed=6, replication_factor=3)
        key = b"k0000"
        primary = sim.preference_nodes(key)[0]
        sim.put(key, b"v1")
        sim.kill(primary)
        sim.put(key, b"v2")  # reaches the two live replicas; hint queued
        # The hint is lost: the primary comes back stale.
        sim.recover(primary, replay_hints=False)
        assert decode_envelope(primary.get(key))[2] == b"v1"
        # A quorum read contacts the stale primary first, but the
        # fresher replica's higher version wins — and the primary is
        # read-repaired before the answer returns.
        assert sim.get(key) == b"v2"
        assert sim.read_repairs >= 1
        assert decode_envelope(primary.get(key))[2] == b"v2"

    def test_repair_replicas_converges_all_live_copies(self):
        sim = ClusterSimulator(5, small_options, seed=7, replication_factor=3)
        for index in range(30):
            sim.put(f"k{index:04d}".encode(), b"v1")
        victim = sim.nodes[2]
        sim.kill(victim)
        for index in range(30):
            sim.put(f"k{index:04d}".encode(), b"v2")
        sim.recover(victim, replay_hints=False)  # stale victim
        repaired = sim.repair_replicas()
        assert repaired > 0
        for index in range(30):
            key = f"k{index:04d}".encode()
            payloads = {
                decode_envelope(node.get(key))[2]
                for node in sim.preference_nodes(key)
            }
            assert payloads == {b"v2"}
        assert sim.repair_replicas() == 0  # idempotent once converged

    def test_hinted_handoff_replays_on_recovery(self):
        sim = ClusterSimulator(5, small_options, seed=8, replication_factor=3)
        victim = sim.nodes[0]
        sim.kill(victim)
        written = {}
        for index in range(60):
            key = f"k{index:04d}".encode()
            sim.put(key, b"v%d" % index)
            sim.put(key, b"w%d" % index)  # a second version per key
            written[key] = b"w%d" % index
        assert sim.hints_outstanding() > 0
        applied = sim.recover(victim)
        assert applied > 0
        assert sim.hints_outstanding() == 0
        # The recovered node holds the *newest* version of every key it
        # replicates — LWW-guarded replay, not blind overwrite.
        for key, value in written.items():
            if victim in sim.preference_nodes(key):
                assert decode_envelope(victim.get(key))[2] == value
        report = sim.report()
        assert report.hints_replayed == applied
        assert report.dead_nodes == 0

    def test_scan_survives_owner_death(self):
        sim = ClusterSimulator(4, small_options, seed=9, replication_factor=2)
        for index in range(100):
            sim.put(f"k{index:04d}".encode(), b"v%d" % index)
        sim.flush_all()
        sim.kill(0)
        rows = sim.scan(b"k")
        assert len(rows) == 100
        assert dict(rows)[b"k0042"] == b"v42"
        # The limited scan keeps its exact-prefix contract through the
        # outage.
        for limit in (1, 7, 50, 100, 140):
            assert sim.scan(b"k", limit=limit) == rows[:limit]

    def test_rf1_scan_through_outage_is_best_effort(self):
        sim = ClusterSimulator(3, small_options, seed=10)
        for index in range(90):
            sim.put(f"k{index:04d}".encode(), b"v")
        full = sim.scan(b"k")
        assert len(full) == 90
        sim.kill(2)
        partial = sim.scan(b"k")
        # Single-copy: the dead node's keys are simply missing.
        assert 0 < len(partial) < 90
        assert set(partial) <= set(full)

    def test_forged_magic_byte_row_cannot_win_lww(self):
        # A raw row written directly to a node that *happens* to start
        # with the envelope magic byte (1/256 of random values) must
        # not parse as an astronomically-versioned envelope and win
        # LWW forever: versions beyond the cluster's logical clock are
        # structurally impossible and decode as legacy (-1).
        forged = bytes([0xE4]) + b"\xff" * 9 + b"bogus"
        sim = ClusterSimulator(3, small_options, seed=16)
        key = b"k0000"
        stray = next(
            node for node in sim.nodes
            if node is not sim.node_for_key(key)
        )
        stray.put(key, forged)  # survives: not the routed owner
        sim.put(key, b"real")
        assert dict(sim.scan(b"k"))[key] == b"real"
        # Same guard on the quorum-read path: poison a live replica
        # *after* the cluster write so the forged row is what it serves.
        sim2 = ClusterSimulator(4, small_options, seed=17, replication_factor=2)
        sim2.put(key, b"real")
        replica = sim2.preference_nodes(key)[1]
        replica.put(key, forged)
        assert sim2.get(key) == b"real"

    def test_legacy_direct_writes_keep_owner_wins_scan_semantics(self):
        # Rows written straight to nodes (no envelopes, all version −1)
        # fall back to the seed's owner-wins rule: the routed owner's
        # copy — its MiniRocks tombstones included — beats stale
        # migrated copies in the scatter-gather merge.
        sim = ClusterSimulator(3, small_options, seed=18)
        key = b"k0000"
        owner = sim.node_for_key(key)
        stray = next(node for node in sim.nodes if node is not owner)
        stray.put(key, b"stale-copy")
        owner.put(key, b"owner-copy")
        assert dict(sim.scan(b"k"))[key] == b"owner-copy"
        owner.delete(key)  # node-level MiniRocks tombstone
        assert key not in dict(sim.scan(b"k")), "deleted key resurrected"

    def test_modulo_routing_is_a_single_copy_shim(self):
        import zlib

        sim = ClusterSimulator(4, small_options, seed=11, routing="modulo")
        for index in range(50):
            key = f"k{index:04d}".encode()
            assert (
                sim.node_for_key(key)
                is sim.nodes[zlib.crc32(key) % 4]
            )
        sim.put(b"k", b"v")
        assert sim.get(b"k") == b"v"
        with pytest.raises(ConfigurationError):
            ClusterSimulator(
                4, small_options, routing="modulo", replication_factor=2
            )
        with pytest.raises(ConfigurationError):
            ClusterSimulator(4, small_options, routing="hash-ring-typo")

    def test_quorum_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSimulator(3, small_options, replication_factor=4)
        with pytest.raises(ConfigurationError):
            ClusterSimulator(
                3, small_options, replication_factor=2, read_quorum=3
            )
        with pytest.raises(ConfigurationError):
            ClusterSimulator(
                3, small_options, replication_factor=2, write_quorum=0
            )

    def test_fault_injection_validation(self):
        sim = ClusterSimulator(3, small_options, seed=12)
        with pytest.raises(ConfigurationError):
            sim.recover(0)  # alive
        sim.kill(0)
        with pytest.raises(ConfigurationError):
            sim.kill(0)  # already dead
        with pytest.raises(ConfigurationError):
            sim.kill("nodeX")
        with pytest.raises(ConfigurationError):
            sim.kill(99)
        assert [event[0] for event in sim.fault_events] == ["kill"]

    def test_add_node_joins_ring_and_reconverges(self):
        sim = ClusterSimulator(3, small_options, seed=13, replication_factor=2)
        for index in range(80):
            sim.put(f"k{index:04d}".encode(), b"v%d" % index)
        newcomer = sim.add_node()
        assert newcomer.name in sim.ring.members
        # Rows whose preference lists now include the newcomer were
        # copied over by the anti-entropy pass...
        adopted = [
            f"k{index:04d}".encode()
            for index in range(80)
            if newcomer in sim.preference_nodes(f"k{index:04d}".encode())
        ]
        assert adopted  # 64 vnodes: the newcomer owns some of 80 keys
        for key in adopted:
            assert newcomer.get(key) is not None
        # ...and every key still reads back correctly.
        for index in range(80):
            assert sim.get(f"k{index:04d}".encode()) == b"v%d" % index

    def test_ring_rebalance_moves_ssts_toward_owners(self):
        sim = ClusterSimulator(3, small_options, seed=14)
        for index in range(120):
            sim.put(f"k{index:04d}".encode(), b"v")
        sim.flush_all()
        for node in sim.nodes:
            node.db.compact_all()
        # Dislodge: dump every exportable file onto one node.
        dump = sim.nodes[0]
        for node in sim.nodes[1:]:
            for level, sst in list(node.exportable_files()):
                node.export_file(level, sst)
                dump.import_file(level, sst)
        events = sim.rebalance(max_moves=10, policy="ring")
        assert events
        for event in events:
            assert event.destination != event.source
        # Ring policy reaches a fixed point: every exportable file now
        # sits with its min_key's primary owner.
        assert sim.rebalance(max_moves=10, policy="ring") == []
        with pytest.raises(ConfigurationError):
            sim.rebalance(policy="round-robin")

    def test_load_migration_cannot_lose_acknowledged_writes(self):
        # Load-policy rebalance can strand every copy of a key's SSTs
        # on nodes outside its preference list; the quorum read must
        # then escalate (rest of the preference list, then the whole
        # fleet) and read-repair the quorum replicas rather than
        # answer "missing" for an acknowledged write.
        sim = ClusterSimulator(4, small_options, seed=20, replication_factor=3)
        values = {}
        for index in range(300):
            key = f"k{index:04d}".encode()
            values[key] = b"v%d" % index
            sim.put(key, values[key])
        sim.flush_all()
        for _ in range(150):
            sim.rebalance(max_moves=2, policy="load")
        for key, value in values.items():
            assert sim.get(key) == value, f"acknowledged write {key!r} lost"
        # Self-healing: once repaired, the same reads stop escalating.
        escalations = sim.read_escalations
        for key, value in values.items():
            assert sim.get(key) == value
        assert sim.read_escalations == escalations

    def test_replicated_ring_cluster_defaults_to_ring_rebalance(self):
        # The driver and run_workload call rebalance() with no policy;
        # on an RF>1 ring cluster that must resolve to the placement-
        # preserving ring policy, never load-chasing (which strands
        # replicas off their preference lists).
        sim = ClusterSimulator(4, small_options, seed=21, replication_factor=3)
        for index in range(300):
            sim.put(f"k{index:04d}".encode(), b"v")
        sim.flush_all()
        for _ in range(60):
            sim.rebalance(max_moves=2)
        for node in sim.nodes:
            for _level, sst in node.db.manifest.live_files():
                assert node in sim.preference_nodes(sst.min_key), (
                    f"default rebalance stranded {sst.file_id} on "
                    f"{node.name}, off its preference list"
                )
        assert sim.read_escalations == 0
        # Single-copy fleets keep the seed's load-chasing default.
        rf1 = ClusterSimulator(2, small_options, seed=22)
        for index in range(80):
            rf1.nodes[0].put(f"k{index:04d}".encode(), b"v")
        rf1.nodes[0].db.flush()
        events = rf1.rebalance(max_moves=2)
        assert events and all(e.source == "node0" for e in events)

    def test_rebalance_stands_down_without_two_live_nodes(self):
        sim = ClusterSimulator(2, small_options, seed=15)
        for index in range(40):
            sim.put(f"k{index:04d}".encode(), b"v")
        sim.flush_all()
        sim.kill(1)
        assert sim.rebalance(max_moves=3) == []


def _expected_final_state(spec: WorkloadSpec, shard_seed: int):
    """Replay the driver's exact op stream; return the last-acked value
    per key (YCSB A–F issue no deletes)."""
    from repro.simulation.seeds import derive_seed

    rng = random.Random(derive_seed(shard_seed, 0x0B5))
    state = {}
    for op, key, value in load_phase(spec, rng):
        state[key] = value
    for op, key, value in run_phase(spec, rng):
        if op in ("put", "rmw"):
            state[key] = value
    return state


@pytest.mark.chaos
class TestChaosDriver:
    """Fault-injection schedules through the WorkloadDriver."""

    NODES = 5
    RF = 3

    def _spec(self, workload, ops=400):
        return WorkloadSpec(
            workload=workload,
            record_count=150,
            operation_count=ops,
            value_size=16,
            max_scan_length=25,
        )

    @pytest.mark.parametrize("workload", list("abcdef"))
    def test_every_workload_finishes_through_node_death(self, workload):
        """The acceptance gate: RF=3, one node killed mid-run, every
        YCSB mix completes with zero lost acknowledged writes."""
        spec = self._spec(workload)
        config = DriverConfig(
            spec=spec,
            shards=1,
            workers=1,
            seed=20230414,
            chaos=(ChaosEvent(at_op=300, action="kill", node=1),),
        )
        driver = WorkloadDriver(
            cluster_target_factory(
                self.NODES, small_options, replication_factor=self.RF
            ),
            config,
            collect=lambda sim: sim,
        )
        result = driver.run()
        assert result.operations == spec.operation_count
        sim = result.shard_results[0].collected
        assert sim.report().dead_nodes == 1
        # Zero lost acknowledged writes: every key's last acknowledged
        # value is still readable through the surviving quorum.
        from repro.simulation.seeds import derive_seed

        shard_seed = derive_seed(config.seed, 0xD21E, 0)
        expected = _expected_final_state(spec, shard_seed)
        assert expected
        for key, value in expected.items():
            assert sim.get(key) == value, (
                f"workload {workload}: acknowledged write to {key!r} lost"
            )

    def test_chaos_outcomes_bit_identical_at_any_workers(self):
        """Op streams and outcome fingerprints are pure in
        (seed, chaos schedule) — ``workers=`` never changes them."""
        spec = self._spec("f")
        base = dict(
            spec=spec,
            shards=3,
            warmup_operations=50,
            seed=7,
            chaos=(
                ChaosEvent(at_op=250, action="kill", node=2),
                ChaosEvent(at_op=450, action="recover", node=2),
            ),
        )

        def run(workers):
            return WorkloadDriver(
                cluster_target_factory(
                    self.NODES, small_options, replication_factor=self.RF
                ),
                DriverConfig(workers=workers, **base),
                collect=flush_and_report,
            ).run()

        serial, threaded = run(1), run(3)
        assert serial.fingerprint == threaded.fingerprint
        assert serial.op_counts == threaded.op_counts
        for left, right in zip(serial.shard_results, threaded.shard_results):
            assert left.fingerprint == right.fingerprint
            assert left.collected.audit.total_ids_assigned == (
                right.collected.audit.total_ids_assigned
            )

    def test_recovery_replays_hints_mid_run(self):
        spec = self._spec("a", ops=500)
        config = DriverConfig(
            spec=spec,
            shards=1,
            seed=3,
            chaos=(
                ChaosEvent(at_op=200, action="kill", node=0),
                ChaosEvent(at_op=400, action="recover", node=0),
            ),
        )
        result = WorkloadDriver(
            cluster_target_factory(
                self.NODES, small_options, replication_factor=self.RF
            ),
            config,
            collect=flush_and_report,
        ).run()
        report = result.shard_results[0].collected
        assert report.dead_nodes == 0
        assert report.hints_replayed > 0
        assert report.hints_outstanding == 0

    def test_chaos_with_rebalance_ticks_interleave(self):
        spec = self._spec("b")
        config = DriverConfig(
            spec=spec,
            shards=1,
            seed=5,
            rebalance_every=100,
            chaos=(
                ChaosEvent(at_op=250, action="kill", node=3),
                ChaosEvent(at_op=350, action="recover", node=3),
            ),
        )
        result = WorkloadDriver(
            cluster_target_factory(
                self.NODES, small_options, replication_factor=self.RF
            ),
            config,
            collect=flush_and_report,
        ).run()
        assert result.operations == spec.operation_count

    def test_chaos_requires_a_cluster_target(self):
        config = DriverConfig(
            spec=self._spec("c", ops=10),
            shards=1,
            chaos=(ChaosEvent(at_op=5, action="kill", node=0),),
        )
        driver = WorkloadDriver(store_target_factory(small_options), config)
        with pytest.raises(ConfigurationError):
            driver.run()

    def test_chaos_event_validation_and_ordering(self):
        with pytest.raises(ConfigurationError):
            ChaosEvent(at_op=0, action="kill", node=0)
        with pytest.raises(ConfigurationError):
            ChaosEvent(at_op=1, action="explode", node=0)
        with pytest.raises(ConfigurationError):
            ChaosEvent(at_op=1, action="kill", node=-1)
        config = DriverConfig(
            spec=self._spec("c", ops=10),
            chaos=(
                ChaosEvent(at_op=9, action="recover", node=0),
                ChaosEvent(at_op=4, action="kill", node=0),
            ),
        )
        assert [event.at_op for event in config.chaos] == [4, 9]
