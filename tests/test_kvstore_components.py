"""Unit tests for MiniRocks components: memtable, bloom, WAL, SST, cache."""


import pytest

from repro.errors import ConfigurationError, KVStoreError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.sstable import Block, SSTable, _decode_entries, _encode_entries
from repro.kvstore.wal import OP_DELETE, OP_PUT, WriteAheadLog


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put(b"a", b"1")
        assert table.get(b"a") == b"1"
        assert table.get(b"b") is None

    def test_overwrite(self):
        table = MemTable()
        table.put(b"a", b"1")
        table.put(b"a", b"2")
        assert table.get(b"a") == b"2"
        assert len(table) == 1

    def test_delete_records_tombstone(self):
        table = MemTable()
        table.put(b"a", b"1")
        table.delete(b"a")
        assert table.get(b"a") == TOMBSTONE

    def test_sorted_entries(self):
        table = MemTable()
        for key in (b"c", b"a", b"b"):
            table.put(key, b"v")
        assert [k for k, _ in table.sorted_entries()] == [b"a", b"b", b"c"]

    def test_key_validation(self):
        table = MemTable()
        with pytest.raises(KVStoreError):
            table.put("str", b"v")  # type: ignore[arg-type]
        with pytest.raises(KVStoreError):
            table.put(b"", b"v")
        with pytest.raises(KVStoreError):
            table.put(b"k", TOMBSTONE)

    def test_approximate_size(self):
        table = MemTable()
        table.put(b"ab", b"cde")
        assert table.approximate_size() == 5

    def test_clear(self):
        table = MemTable()
        table.put(b"a", b"1")
        table.clear()
        assert len(table) == 0


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(200, 10)
        keys = [f"key{i}".encode() for i in range(200)]
        bloom.add_all(keys)
        assert all(bloom.may_contain(k) for k in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(500, 10)
        bloom.add_all(f"in{i}".encode() for i in range(500))
        false_positives = sum(
            bloom.may_contain(f"out{i}".encode()) for i in range(2000)
        )
        # 10 bits/key → ~1% theoretical; allow generous slack.
        assert false_positives < 2000 * 0.05

    def test_expected_fp_rate(self):
        bloom = BloomFilter(100, 10)
        assert bloom.expected_false_positive_rate() == 0.0
        bloom.add_all(f"{i}".encode() for i in range(100))
        assert 0 < bloom.expected_false_positive_rate() < 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(-1, 10)
        with pytest.raises(ConfigurationError):
            BloomFilter(10, 0)


class TestWAL:
    def test_roundtrip(self):
        wal = WriteAheadLog()
        wal.append_put(b"k1", b"v1")
        wal.append_delete(b"k2")
        wal.append_put(b"k3", b"")
        restored = WriteAheadLog.deserialize(wal.serialize())
        assert list(restored.records()) == [
            (OP_PUT, b"k1", b"v1"),
            (OP_DELETE, b"k2", b""),
            (OP_PUT, b"k3", b""),
        ]

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.append_put(b"k", b"v")
        wal.truncate()
        assert len(wal) == 0

    def test_corrupt_payload_rejected(self):
        with pytest.raises(KVStoreError):
            WriteAheadLog.deserialize(b"\x09garbage")
        with pytest.raises(KVStoreError):
            WriteAheadLog.deserialize(b"\x01\x00\x00")


class TestBlockEncoding:
    def test_roundtrip(self):
        entries = [(b"a", b"1"), (b"bb", b""), (b"ccc", b"xyz" * 100)]
        assert _decode_entries(_encode_entries(entries)) == entries

    def test_truncation_detected(self):
        payload = _encode_entries([(b"abc", b"def")])
        with pytest.raises(KVStoreError):
            _decode_entries(payload[:-5] + b"\xff\xff\xff\xff")


class TestSSTable:
    def _build(self, count=40, block_entries=8, file_id=7):
        entries = [
            (f"k{i:04d}".encode(), f"v{i}".encode()) for i in range(count)
        ]
        return (
            SSTable.from_entries(
                file_id, entries, block_entries=block_entries
            ),
            entries,
        )

    def test_point_lookup(self):
        sst, entries = self._build()
        for key, value in entries:
            assert sst.get_direct(key) == value
        assert sst.get_direct(b"nope") is None

    def test_range_metadata(self):
        sst, entries = self._build()
        assert sst.min_key == entries[0][0]
        assert sst.max_key == entries[-1][0]
        assert sst.key_in_range(b"k0010")
        assert not sst.key_in_range(b"zzz")

    def test_block_structure(self):
        sst, _ = self._build(count=20, block_entries=8)
        assert len(sst.blocks) == 3  # 8 + 8 + 4
        assert sst.blocks[-1].block_no == 2

    def test_iter_entries_sorted(self):
        sst, entries = self._build()
        assert list(sst.iter_entries()) == entries

    def test_unsorted_input_rejected(self):
        with pytest.raises(KVStoreError):
            SSTable.from_entries(1, [(b"b", b"1"), (b"a", b"2")], 8)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(KVStoreError):
            SSTable.from_entries(1, [(b"a", b"1"), (b"a", b"2")], 8)

    def test_empty_rejected(self):
        with pytest.raises(KVStoreError):
            SSTable.from_entries(1, [], 8)

    def test_overlaps(self):
        a, _ = self._build(count=10)
        b = SSTable.from_entries(
            2, [(b"k0005x", b"v"), (b"zz", b"v")], 8
        )
        c = SSTable.from_entries(3, [(b"zza", b"v")], 8)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_fingerprints_unique(self):
        a, _ = self._build(file_id=1)
        b, _ = self._build(file_id=1)  # same file_id, different files!
        assert a.fingerprint != b.fingerprint

    def test_bloom_attached(self):
        sst, entries = self._build()
        assert sst.bloom is not None
        assert all(sst.bloom.may_contain(k) for k, _ in entries)


class TestBlockCache:
    def _block(self, fingerprint=1, block_no=0):
        return Block(
            payload=_encode_entries([(b"k", b"v")]),
            first_key=b"k",
            last_key=b"k",
            owner_fingerprint=fingerprint,
            block_no=block_no,
        )

    def test_hit_miss_counting(self):
        cache = BlockCache(4)
        assert cache.get(1, 0, expected_fingerprint=10) is None
        cache.put(1, 0, self._block(10))
        assert cache.get(1, 0, expected_fingerprint=10) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = BlockCache(2)
        cache.put(1, 0, self._block(1))
        cache.put(2, 0, self._block(2))
        cache.get(1, 0, 1)  # touch 1 -> 2 becomes LRU
        cache.put(3, 0, self._block(3))
        assert cache.get(2, 0, 2) is None  # evicted
        assert cache.get(1, 0, 1) is not None
        assert cache.stats.evictions == 1

    def test_cross_file_hit_detected(self):
        cache = BlockCache(4)
        cache.put(7, 0, self._block(fingerprint=111))
        block = cache.get(7, 0, expected_fingerprint=222)
        assert block is not None  # the cache happily serves it
        assert cache.stats.cross_file_hits == 1
        assert cache.collision_log == [(7, 222, 111)]

    def test_evict_file(self):
        cache = BlockCache(8)
        cache.put(5, 0, self._block(1, 0))
        cache.put(5, 1, self._block(1, 1))
        cache.put(6, 0, self._block(2, 0))
        assert cache.evict_file(5) == 2
        assert len(cache) == 1

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            BlockCache(0)
