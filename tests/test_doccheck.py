"""The docs smoke-checker: fence extraction, skip-marker scoping,
rot classification, and end-to-end runs over real markdown files."""

import os
import subprocess
import sys

import pytest

from repro.devtools.doccheck import (
    ROT_SIGNATURES,
    _classify,
    check_paths,
    default_doc_paths,
    extract_blocks,
)
from repro.errors import LintError

# -- extraction --------------------------------------------------------------


class TestExtractBlocks:
    def test_langs_are_normalized(self):
        text = "\n".join(
            [
                "```sh",
                "true",
                "```",
                "```py",
                "pass",
                "```",
                "```text",
                "not runnable",
                "```",
            ]
        )
        blocks = extract_blocks(text, "doc.md")
        assert [b.lang for b in blocks] == ["bash", "python", "text"]
        assert [b.runnable for b in blocks] == [True, True, False]

    def test_line_numbers_point_at_the_opening_fence(self):
        text = "intro\n\n```bash\ntrue\n```\n"
        (block,) = extract_blocks(text, "doc.md")
        assert block.line == 3
        assert block.code == "true\n"

    def test_skip_marker_applies_to_the_next_fence_only(self):
        text = "\n".join(
            [
                "<!-- doccheck: skip (serves forever) -->",
                "```bash",
                "uuidp serve",
                "```",
                "```bash",
                "true",
                "```",
            ]
        )
        skipped, live = extract_blocks(text, "doc.md")
        assert skipped.skip_reason == "serves forever"
        assert not skipped.runnable
        assert live.skip_reason is None
        assert live.runnable

    def test_prose_mentioning_the_marker_does_not_skip(self):
        # The marker is anchored at line start; documentation that
        # *talks about* the marker mid-sentence must not opt out the
        # next real block.
        text = "\n".join(
            [
                "Opt out with `<!-- doccheck: skip (reason) -->` above",
                "the fence.",
                "```bash",
                "true",
                "```",
            ]
        )
        (block,) = extract_blocks(text, "doc.md")
        assert block.skip_reason is None

    def test_reasonless_marker_gets_a_default_reason(self):
        text = "<!-- doccheck: skip -->\n```bash\ntrue\n```\n"
        (block,) = extract_blocks(text, "doc.md")
        assert block.skip_reason == "marked skip"

    def test_unterminated_fence_is_dropped(self):
        text = "```bash\ntrue\n"
        assert extract_blocks(text, "doc.md") == []


# -- classification ----------------------------------------------------------


class TestClassify:
    @pytest.mark.parametrize("signature", ROT_SIGNATURES)
    def test_rot_signatures_fail_even_on_exit_zero(self, signature):
        status, detail = _classify(0, f"... {signature} ...")
        assert status == "failed"
        assert signature in detail

    @pytest.mark.parametrize("code", [126, 127])
    def test_command_missing_exit_codes_fail(self, code):
        assert _classify(code, "")[0] == "failed"

    def test_other_nonzero_exits_are_tolerated(self):
        assert _classify(1, "experiment went red")[0] == "tolerated"

    def test_clean_exit_is_ok(self):
        assert _classify(0, "all good")[0] == "ok"


# -- end to end --------------------------------------------------------------


def _write_doc(tmp_path, text):
    doc = tmp_path / "doc.md"
    doc.write_text(text, encoding="utf-8")
    return str(doc)


class TestCheckPaths:
    def test_mixed_doc_is_fully_classified(self, tmp_path):
        doc = _write_doc(
            tmp_path,
            "\n".join(
                [
                    "```bash",
                    "true",
                    "```",
                    "```python",
                    "print('ok')",
                    "```",
                    "```bash",
                    "exit 3",
                    "```",
                    "<!-- doccheck: skip (needs a server) -->",
                    "```bash",
                    "definitely-not-a-command",
                    "```",
                    "```json",
                    "{}",
                    "```",
                ]
            ),
        )
        report = check_paths([doc], root=str(tmp_path))
        assert report.counts() == {
            "ok": 2,
            "tolerated": 1,
            "skipped": 1,
            "ignored": 1,
        }
        assert report.exit_code == 0
        assert "clean" in report.render()

    def test_rotted_import_fails_the_run(self, tmp_path):
        doc = _write_doc(
            tmp_path,
            "```python\nimport repro.no_such_module\n```\n",
        )
        report = check_paths([doc], root=str(tmp_path))
        assert report.exit_code == 1
        (failure,) = report.failures
        assert "ModuleNotFoundError" in failure.detail
        assert failure.location() == f"{doc}:1"
        assert "ROTTED" in report.render()

    def test_missing_command_fails_the_run(self, tmp_path):
        doc = _write_doc(
            tmp_path, "```bash\ndefinitely-not-a-command\n```\n"
        )
        report = check_paths([doc], root=str(tmp_path))
        assert report.exit_code == 1

    def test_uuidp_shim_and_pythonpath_are_injected(self, tmp_path):
        # Docs written against the installed entry point must check
        # out in a bare tree: `uuidp` resolves via the injected shim
        # and the repo's src/ lands on PYTHONPATH — no install step.
        doc = _write_doc(
            tmp_path,
            "```bash\nuuidp list >/dev/null\n```\n"
            "```python\nimport repro.cli\n```\n",
        )
        report = check_paths([doc], root=os.getcwd())
        assert [r.status for r in report.results] == ["ok", "ok"]

    def test_timeout_is_tolerated_not_failed(self, tmp_path):
        doc = _write_doc(tmp_path, "```bash\nsleep 30\n```\n")
        report = check_paths([doc], root=str(tmp_path), timeout=0.5)
        (result,) = report.results
        assert result.status == "tolerated"
        assert "timeout" in result.detail

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LintError):
            check_paths([str(tmp_path / "absent.md")])

    def test_default_doc_paths_finds_readme_and_docs(self, tmp_path):
        (tmp_path / "README.md").write_text("x", encoding="utf-8")
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "b.md").write_text("x", encoding="utf-8")
        (docs / "a.md").write_text("x", encoding="utf-8")
        (docs / "not-markdown.txt").write_text("x", encoding="utf-8")
        paths = default_doc_paths(str(tmp_path))
        assert [p.rsplit("/", 1)[-1] for p in paths] == [
            "README.md",
            "a.md",
            "b.md",
        ]


# -- the CLI front end -------------------------------------------------------


class TestCli:
    # cwd stays at the repo root so the interpreter's (relative)
    # PYTHONPATH=src keeps resolving inside the subprocess; the doc
    # under test is passed by absolute path.
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "doccheck", *argv],
            cwd=os.getcwd(),
            capture_output=True,
            text=True,
        )

    def test_exit_zero_on_clean_docs(self, tmp_path):
        doc = _write_doc(tmp_path, "```bash\ntrue\n```\n")
        proc = self._run(doc)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_exit_one_on_rot(self, tmp_path):
        doc = _write_doc(
            tmp_path, "```bash\nuuidp --no-such-flag\n```\n"
        )
        proc = self._run(doc)
        assert proc.returncode == 1
        assert "ROTTED" in proc.stdout

    def test_verbose_lists_every_block(self, tmp_path):
        doc = _write_doc(tmp_path, "```bash\ntrue\n```\n")
        proc = self._run(doc, "--verbose")
        assert f"{doc}:1" in proc.stdout
