"""The zero-decode read path: block format v2, serialized blooms,
batched lookups, and the supporting O(1) bookkeeping.

Covers the PR-8 storage-format contracts:

* block v2 encode→decode identity, and v1 payloads still decoding;
* corrupted offset trailers (truncation, bit flips) raising
  :class:`~repro.errors.KVStoreError` — never a silent misread;
* bloom serialization round-trips and numpy/python backend
  bit-identity over a parameter grid;
* ``multi_get`` agreeing with looped ``get`` including stats;
* the per-file cache index, O(1) memtable sizing, and build-time
  live-entry counts surviving both SST container formats.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import KVStoreError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.bloom import (
    BloomFilter,
    hash_pair,
    hash_pairs,
    numpy_available,
)
from repro.kvstore.db import MiniRocks
from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.options import Options
from repro.kvstore.sstable import (
    _BLOCK_MAGIC,
    Block,
    SSTable,
    _decode_entries,
    _encode_entries,
    _encode_records,
    _parse_v2_offsets,
    _scan_v1_offsets,
)
from repro.kvstore.storage import SimulatedStorage

FAST = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ENTRIES = st.lists(
    st.tuples(st.binary(min_size=1, max_size=20), st.binary(max_size=40)),
    max_size=12,
)

SORTED_ENTRIES = st.lists(
    st.binary(min_size=1, max_size=12),
    min_size=1,
    max_size=30,
    unique=True,
).map(
    lambda keys: [(k, b"v:" + k) for k in sorted(keys)]
)


def _v1_payload(entries):
    """Encode a legacy records-only block body (no offset trailer)."""
    parts, _offsets = _encode_records(entries)
    return b"".join(parts)


# -- block format v2 ----------------------------------------------------------


@FAST
@given(entries=ENTRIES)
def test_v2_roundtrip_identity(entries):
    payload = _encode_entries(entries)
    assert payload.endswith(_BLOCK_MAGIC)
    assert _decode_entries(payload) == entries


@FAST
@given(entries=ENTRIES)
def test_v1_payloads_still_decode(entries):
    assert _decode_entries(_v1_payload(entries)) == entries


def test_v1_payload_ending_with_magic_bytes_still_decodes():
    """A legacy value may legitimately end with the v2 magic bytes.

    The sniffing decoder must fall back to the v1 scan when the
    strict v2 validation rejects the trailer, and the v1 *container*
    loader must never sniff at all.
    """
    entries = [(b"\x00", _BLOCK_MAGIC), (b"k", b"tail" + _BLOCK_MAGIC)]
    assert _decode_entries(_v1_payload(entries)) == entries
    sst = SSTable.from_entries(
        file_id=9, entries=entries, block_entries=4, bloom_bits_per_key=10
    )
    clone = SSTable.from_bytes(sst.to_bytes(format_version=1))
    assert list(clone.iter_entries()) == entries


@FAST
@given(entries=ENTRIES)
def test_v2_offsets_agree_with_v1_scan(entries):
    """The stored offset table is exactly what a record walk yields."""
    payload = _encode_entries(entries)
    body = _v1_payload(entries)
    assert _parse_v2_offsets(payload) == _scan_v1_offsets(body)


@FAST
@given(entries=ENTRIES, cut=st.integers(1, 12))
def test_truncated_trailer_raises(entries, cut):
    payload = _encode_entries(entries)
    cut = min(cut, len(payload) - 1)
    with pytest.raises(KVStoreError):
        _parse_v2_offsets(payload[:-cut])


@FAST
@given(
    entries=ENTRIES,
    tail_byte=st.integers(1, 8),
    flip=st.integers(0, 7),
)
def test_bitflipped_trailer_raises_or_decodes_identically(
    entries, tail_byte, flip
):
    """Flipping offset-table/count bits must never silently misread.

    Every flip inside the fixed trailer (count + magic) or the offset
    table must either raise or — when the flip lands in a magic byte
    making the payload look like v1 — still decode to the *original*
    entries via the v1 scan or raise. Wrong entries are the one
    forbidden outcome.
    """
    payload = bytearray(_encode_entries(entries))
    position = len(payload) - min(tail_byte, len(payload))
    payload[position] ^= 1 << flip
    try:
        decoded = _decode_entries(bytes(payload))
    except KVStoreError:
        return
    assert decoded == entries


def test_block_get_slices_single_record():
    entries = [(f"k{i:03d}".encode(), f"v{i}".encode()) for i in range(50)]
    sst = SSTable.from_entries(
        file_id=1, entries=entries, block_entries=16, bloom_bits_per_key=0
    )
    for key, value in entries:
        block = sst.blocks[sst.block_for_key(key)]
        assert block.get(key) == value
        assert block.get(key + b"\x00") is None
    assert sst.blocks[0].get(b"aaaa") is None  # below every key
    assert sst.blocks[-1].get(b"zzzz") is None  # above every key


@FAST
@given(entries=SORTED_ENTRIES)
def test_block_entries_from_matches_slice(entries):
    payload = _encode_entries(entries)
    block = Block(
        payload=payload,
        first_key=entries[0][0],
        last_key=entries[-1][0],
        owner_fingerprint=0,
        block_no=0,
    )
    assert block.entries() == entries
    assert block.entry_count == len(entries)
    for start, _ in entries[:: max(1, len(entries) // 4)]:
        expected = [(k, v) for k, v in entries if k >= start]
        assert list(block.entries_from(start)) == expected


def test_lazy_offsets_memoized():
    payload = _encode_entries([(b"a", b"1"), (b"b", b"2")])
    block = Block(
        payload=payload, first_key=b"a", last_key=b"b",
        owner_fingerprint=0, block_no=0,
    )
    assert block._offsets is None  # not parsed until first use
    first = block.offsets()
    assert block._offsets is first
    assert block.offsets() is first  # same tuple, no re-parse


# -- SST container formats ----------------------------------------------------


def _sample_sst(n=40, bloom=10, with_tombstones=False):
    entries = []
    for i in range(n):
        value = TOMBSTONE if with_tombstones and i % 5 == 0 else (
            f"value{i}".encode()
        )
        entries.append((f"key{i:04d}".encode(), value))
    return SSTable.from_entries(
        file_id=424242,
        entries=entries,
        block_entries=7,
        bloom_bits_per_key=bloom,
    )


def test_v1_container_still_loads():
    sst = _sample_sst()
    clone = SSTable.from_bytes(sst.to_bytes(format_version=1))
    assert clone.file_id == sst.file_id
    assert clone.fingerprint == sst.fingerprint
    assert list(clone.iter_entries()) == list(sst.iter_entries())
    assert all(block.format == 1 for block in clone.blocks)
    # The v1 container carries no serialized bloom; it is rebuilt.
    assert clone.bloom is not None
    for key, _ in sst.iter_entries():
        assert clone.bloom.may_contain(key)


def test_v2_container_preserves_bloom_bits_exactly():
    sst = _sample_sst()
    clone = SSTable.from_bytes(sst.to_bytes())
    assert clone.bloom is not None
    assert bytes(clone.bloom._bits) == bytes(sst.bloom._bits)
    assert clone.bloom.num_probes == sst.bloom.num_probes
    assert clone.bloom.count == sst.bloom.count


def test_live_entry_count_survives_both_formats():
    sst = _sample_sst(with_tombstones=True)
    expected = sst.audit_live_entry_count()
    assert sst.live_entry_count() == expected
    for version in (1, 2):
        clone = SSTable.from_bytes(sst.to_bytes(format_version=version))
        assert clone.live_entry_count() == expected
        assert clone.audit_live_entry_count() == expected


def test_bloom_roundtrip_bytes():
    bloom = BloomFilter(100, 10)
    keys = [f"key{i}".encode() for i in range(100)]
    bloom.add_all(keys)
    clone = BloomFilter.from_bytes(bloom.to_bytes())
    assert bytes(clone._bits) == bytes(bloom._bits)
    assert clone.num_bits == bloom.num_bits
    assert clone.num_probes == bloom.num_probes
    assert clone.count == bloom.count
    for key in keys:
        assert clone.may_contain(key)


def test_bloom_from_bytes_rejects_corruption():
    payload = BloomFilter(10, 10).to_bytes()
    with pytest.raises(KVStoreError):
        BloomFilter.from_bytes(b"XX" + payload[2:])  # bad magic
    with pytest.raises(KVStoreError):
        BloomFilter.from_bytes(payload[:-3])  # short bit array
    with pytest.raises(KVStoreError):
        BloomFilter.from_bytes(payload + b"\x00")  # long bit array


# -- bloom backend equivalence ------------------------------------------------


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
@pytest.mark.parametrize("num_keys", [1, 7, 64, 400])
@pytest.mark.parametrize("bits_per_key", [4, 10, 16])
def test_bloom_backends_bit_identical(num_keys, bits_per_key):
    rng = random.Random(num_keys * 1000 + bits_per_key)
    keys = [
        rng.randbytes(rng.randint(1, 24)) for _ in range(num_keys)
    ]
    absent = [rng.randbytes(16) for _ in range(200)]
    vec = BloomFilter(num_keys, bits_per_key, backend="numpy")
    ref = BloomFilter(num_keys, bits_per_key, backend="python")
    vec.add_all(keys)
    for key in keys:
        ref.add(key)
    assert bytes(vec._bits) == bytes(ref._bits)
    probes = keys + absent
    assert vec.may_contain_batch(probes) == [
        ref.may_contain(key) for key in probes
    ]
    # Scalar probe on the vectorized filter matches, too.
    for key, pair in zip(probes, hash_pairs(probes)):
        assert vec.may_contain_hash(pair) == ref.may_contain(key)
        assert pair == hash_pair(key)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_bloom_serialized_across_backends():
    keys = [f"key{i}".encode() for i in range(64)]
    built = BloomFilter(64, 10, backend="numpy")
    built.add_all(keys)
    reloaded = BloomFilter.from_bytes(built.to_bytes(), backend="python")
    assert all(reloaded.may_contain(key) for key in keys)
    assert bytes(reloaded._bits) == bytes(built._bits)


# -- multi_get ----------------------------------------------------------------


def _populated_store(seed=7, n=400, deletes=40):
    rng = random.Random(seed)
    db = MiniRocks(
        Options(memtable_entries=32, block_entries=8),
        rng=random.Random(seed + 1),
    )
    expected = {}
    for i in range(n):
        key = f"key{rng.randrange(150):04d}".encode()
        value = f"value{i}".encode()
        db.put(key, value)
        expected[key] = value
    for _ in range(deletes):
        key = f"key{rng.randrange(150):04d}".encode()
        db.delete(key)
        expected.pop(key, None)
    return db, expected


def test_multi_get_matches_looped_get():
    db, expected = _populated_store()
    probe = sorted(expected) + [b"missing1", b"key9999", b"zzz"]
    random.Random(3).shuffle(probe)
    batched = db.multi_get(probe)
    assert batched == [db.get(key) for key in probe]
    assert batched == [expected.get(key) for key in probe]


def test_multi_get_stats_match_looped_get():
    db, expected = _populated_store(seed=11)
    probe = (sorted(expected) + [b"absent"]) * 2
    before = (db.stats.gets, db.stats.bloom_negative, db.stats.sst_reads)
    db.multi_get(probe)
    batch_delta = (
        db.stats.gets - before[0],
        db.stats.bloom_negative - before[1],
        db.stats.sst_reads - before[2],
    )
    db2, _ = _populated_store(seed=11)
    for key in probe:
        db2.get(key)
    assert batch_delta == (
        db2.stats.gets, db2.stats.bloom_negative, db2.stats.sst_reads
    )


def test_multi_get_empty_and_memtable_only():
    db = MiniRocks(Options(memtable_entries=64))
    assert db.multi_get([]) == []
    db.put(b"a", b"1")
    db.delete(b"b")
    assert db.multi_get([b"a", b"b", b"c"]) == [b"1", None, None]
    assert db.stats.gets == 3


# -- satellite bookkeeping ----------------------------------------------------


def _block(no):
    payload = _encode_entries([(b"k%d" % no, b"v")])
    return Block(
        payload=payload, first_key=b"k", last_key=b"k",
        owner_fingerprint=99, block_no=no,
    )


def test_evict_file_uses_per_file_index():
    cache = BlockCache(capacity_blocks=64)
    for file_id in (1, 2, 3):
        for no in range(5):
            cache.put(file_id, no, _block(no))
    assert cache._by_file[2] == set(range(5))
    assert cache.evict_file(2) == 5
    assert 2 not in cache._by_file
    assert len(cache) == 10
    assert cache.evict_file(2) == 0
    # Files 1 and 3 untouched.
    assert cache.get(1, 0, 99) is not None
    assert cache.get(3, 4, 99) is not None


def test_eviction_keeps_index_consistent():
    cache = BlockCache(capacity_blocks=4)
    for no in range(6):  # overflows capacity, evicting LRU
        cache.put(7, no, _block(no))
    assert cache.stats.evictions == 2
    assert cache._by_file[7] == {2, 3, 4, 5}
    assert cache.evict_file(7) == 4
    assert len(cache) == 0
    assert cache._by_file == {}


def test_approximate_size_incremental():
    table = MemTable()
    assert table.approximate_size() == 0
    table.put(b"abc", b"12345")
    assert table.approximate_size() == 8
    table.put(b"abc", b"1")  # overwrite shrinks by the value delta
    assert table.approximate_size() == 4
    table.delete(b"abc")  # tombstone counts as the stored value
    assert table.approximate_size() == 3 + len(TOMBSTONE)
    table.put(b"xy", b"zz")
    table.clear()
    assert table.approximate_size() == 0


@FAST
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),
            st.binary(min_size=1, max_size=8),
            st.binary(max_size=16),
        ),
        max_size=40,
    )
)
def test_approximate_size_matches_recount(ops):
    table = MemTable()
    for is_put, key, value in ops:
        if is_put and value != TOMBSTONE:
            table.put(key, value)
        else:
            table.delete(key)
    recount = sum(
        len(k) + len(v) for k, v in table.sorted_entries()
    )
    assert table.approximate_size() == recount


def test_memtable_entries_from_streams_sorted_suffix():
    table = MemTable()
    for i in (5, 1, 9, 3, 7):
        table.put(b"k%d" % i, b"v%d" % i)
    assert [k for k, _ in table.sorted_entries()] == [
        b"k1", b"k3", b"k5", b"k7", b"k9"
    ]
    assert [k for k, _ in table.entries_from(b"k4")] == [
        b"k5", b"k7", b"k9"
    ]
    assert list(table.entries_from(b"z")) == []


# -- durable stores across container formats ----------------------------------


@pytest.mark.parametrize("version", [1, 2])
def test_durable_reopen_across_formats(version):
    storage = SimulatedStorage(seed=5)
    options = Options(
        memtable_entries=8,
        block_entries=4,
        bloom_bits_per_key=10,
        sst_format_version=version,
    )
    db = MiniRocks.open(storage, options=options, rng=random.Random(5))
    expected = {}
    for i in range(60):
        key = f"key{i % 25:03d}".encode()
        value = f"value{i}".encode()
        db.put(key, value)
        expected[key] = value
    db.delete(b"key003")
    del expected[b"key003"]
    db.flush()
    reopened = MiniRocks.open(
        storage, options=options, rng=random.Random(6)
    )
    for key, value in expected.items():
        assert reopened.get(key) == value
    assert reopened.get(b"key003") is None
    assert reopened.multi_get(sorted(expected)) == [
        expected[key] for key in sorted(expected)
    ]


def test_sst_format_version_validated():
    with pytest.raises(Exception):
        Options(sst_format_version=3)
    with pytest.raises(KVStoreError):
        _sample_sst().to_bytes(format_version=7)
