"""The exact formulas vs full enumeration of the probability space.

For tiny universes every algorithm's randomness can be enumerated
outright, giving a ground-truth collision probability to compare the
closed forms in :mod:`repro.analysis.exact` against — the strongest
correctness evidence in the suite.
"""

import itertools
import math
from fractions import Fraction

import pytest

from repro.adversary.profiles import DemandProfile
from repro.analysis.exact import (
    bins_collision_probability,
    bins_star_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
)
from repro.core.bins_star import chunk_count


def brute_force_random(m, demands) -> Fraction:
    """Enumerate each instance's ID set (uniform over combinations)."""
    universes = [
        list(itertools.combinations(range(m), d)) for d in demands
    ]
    collide = Fraction(0)
    total = math.prod(len(u) for u in universes)
    for choice in itertools.product(*universes):
        sets = [set(c) for c in choice]
        union_size = len(set().union(*sets))
        if union_size < sum(demands):
            collide += 1
    return collide / total


def brute_force_cluster(m, demands) -> Fraction:
    """Enumerate every instance's starting point (m^n outcomes)."""
    collide = 0
    for starts in itertools.product(range(m), repeat=len(demands)):
        occupied = []
        for start, demand in zip(starts, demands):
            occupied.append({(start + i) % m for i in range(demand)})
        union_size = len(set().union(*occupied))
        if union_size < sum(demands):
            collide += 1
    return Fraction(collide, m ** len(demands))


def brute_force_bins(m, k, demands) -> Fraction:
    """Enumerate each instance's bin set."""
    num_bins = m // k
    bin_counts = [-(-d // k) for d in demands]
    universes = [
        list(itertools.combinations(range(num_bins), b)) for b in bin_counts
    ]
    collide = Fraction(0)
    total = math.prod(len(u) for u in universes)
    for choice in itertools.product(*universes):
        union_size = len(set().union(*[set(c) for c in choice]))
        if union_size < sum(bin_counts):
            collide += 1
    return collide / total


def brute_force_bins_star(m, demands) -> Fraction:
    """Enumerate each instance's per-chunk bin choice."""
    num_chunks = chunk_count(m)
    per_instance_choices = []
    for demand in demands:
        chunks_reached = [
            c for c in range(num_chunks) if demand >= (1 << c)
        ]
        options = [
            range(1 << (num_chunks - 1 - c)) for c in chunks_reached
        ]
        per_instance_choices.append(
            [
                dict(zip(chunks_reached, combo))
                for combo in itertools.product(*options)
            ]
        )
    collide = 0
    total = math.prod(len(c) for c in per_instance_choices)
    for assignment in itertools.product(*per_instance_choices):
        collision = False
        for a, b in itertools.combinations(assignment, 2):
            shared = set(a) & set(b)
            if any(a[c] == b[c] for c in shared):
                collision = True
                break
        collide += collision
    return Fraction(collide, total)


@pytest.mark.parametrize(
    "m,demands",
    [
        (5, (1, 1)),
        (6, (2, 2)),
        (7, (2, 3)),
        (6, (1, 2, 2)),
        (5, (2, 2, 1)),
        (4, (2, 2)),
    ],
)
def test_random_matches_enumeration(m, demands):
    expected = brute_force_random(m, demands)
    actual = random_collision_probability(
        m, DemandProfile(demands), method="exact"
    )
    assert actual == expected


@pytest.mark.parametrize(
    "m,demands",
    [
        (5, (1, 1)),
        (7, (2, 3)),
        (8, (3, 3)),
        (6, (2, 2, 1)),
        (9, (2, 2, 2)),
        (5, (2, 2, 1)),
        (10, (4, 5)),
        (6, (6, 1)),
    ],
)
def test_cluster_matches_enumeration(m, demands):
    expected = brute_force_cluster(m, demands)
    actual = cluster_collision_probability(m, DemandProfile(demands))
    assert actual == expected


@pytest.mark.parametrize(
    "m,k,demands",
    [
        (6, 2, (2, 2)),
        (8, 2, (3, 4)),
        (9, 3, (3, 3, 3)),
        (12, 4, (5, 4)),
        (10, 2, (2, 2, 2)),
        (12, 3, (1, 7)),
    ],
)
def test_bins_matches_enumeration(m, k, demands):
    expected = brute_force_bins(m, k, demands)
    actual = bins_collision_probability(
        m, k, DemandProfile(demands), method="exact"
    )
    assert actual == expected


@pytest.mark.parametrize(
    "m,demands",
    [
        (16, (1, 1)),
        (16, (3, 3)),
        (16, (1, 3)),
        (16, (2, 2, 2)),
        (32, (5, 7)),
        (32, (1, 2, 4)),
        (64, (7, 9)),
    ],
)
def test_bins_star_matches_enumeration(m, demands):
    expected = brute_force_bins_star(m, demands)
    actual = bins_star_collision_probability(m, DemandProfile(demands))
    assert actual == expected


def test_monte_carlo_agrees_with_enumeration_for_cluster_star():
    """Cluster* has no closed form; check MC against enumeration of the
    two-instance, demand-(1,1) case where Cluster* = uniform first ID."""
    from repro.core.cluster_star import ClusterStarGenerator
    from repro.simulation.montecarlo import estimate_profile_collision

    m = 8
    estimate = estimate_profile_collision(
        lambda mm, rr: ClusterStarGenerator(mm, rr),
        m,
        DemandProfile((1, 1)),
        trials=4000,
        seed=13,
    )
    assert estimate.ci_low <= 1 / m <= estimate.ci_high
