"""Durable WAL framing, group commit, recovery, and the durable store.

Covers the record codec (bounds before slicing, CRC32), the
group-commit ``DurableWAL`` under all three :class:`WriteMode`\\ s,
segment rotation/truncation, ``read_segments`` torn-tail vs mid-log
classification — including golden fixtures cut/corrupted at **every**
byte boundary of the final record — and the durable
``MiniRocks.open`` lifecycle (SST round-trip, manifest commit,
WAL replay, legacy ``recover_from_wal`` durability fix).
"""

import random

import pytest

from repro.errors import KVStoreError, WALCorruptionError
from repro.kvstore.db import MiniRocks
from repro.kvstore.options import Options
from repro.kvstore.sstable import SSTable
from repro.kvstore.storage import SimulatedStorage
from repro.kvstore.wal import (
    OP_DELETE,
    OP_PUT,
    RECORD_HEADER,
    DurableWAL,
    WriteAheadLog,
    WriteMode,
    decode_record_at,
    encode_record,
    read_segments,
    segment_index,
    segment_name,
)


class TestRecordCodec:
    def test_roundtrip(self):
        payload = encode_record(7, OP_PUT, b"key", b"value")
        seqno, op, key, value, end = decode_record_at(payload, 0)
        assert (seqno, op, key, value) == (7, OP_PUT, b"key", b"value")
        assert end == len(payload) == RECORD_HEADER + 8

    def test_concatenated_records_decode_in_sequence(self):
        payload = encode_record(1, OP_PUT, b"a", b"1") + encode_record(
            2, OP_DELETE, b"b", b""
        )
        seqno1, _, _, _, offset = decode_record_at(payload, 0)
        seqno2, op2, key2, _, end = decode_record_at(payload, offset)
        assert (seqno1, seqno2, op2, key2) == (1, 2, OP_DELETE, b"b")
        assert end == len(payload)

    def test_oversized_length_prefix_rejected_before_slicing(self):
        # A hostile klen must fail by bounds check, not by allocating
        # or mis-slicing: craft a header claiming a 4 GiB key.
        record = bytearray(encode_record(1, OP_PUT, b"k", b"v"))
        record[9:13] = (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(WALCorruptionError, match="key length"):
            decode_record_at(bytes(record), 0)
        record = bytearray(encode_record(1, OP_PUT, b"k", b"v"))
        record[13:17] = (0xFFFFFFFF).to_bytes(4, "big")
        with pytest.raises(WALCorruptionError, match="value length"):
            decode_record_at(bytes(record), 0)

    def test_unknown_op_and_bad_crc_raise(self):
        record = bytearray(encode_record(1, OP_PUT, b"k", b"v"))
        record[8] = 99
        with pytest.raises(WALCorruptionError, match="unknown op"):
            decode_record_at(bytes(record), 0)
        record = bytearray(encode_record(1, OP_PUT, b"k", b"v"))
        record[-1] ^= 0xFF  # flip a value byte -> CRC mismatch
        with pytest.raises(WALCorruptionError, match="checksum"):
            decode_record_at(bytes(record), 0)

    def test_truncated_header_raises(self):
        record = encode_record(1, OP_PUT, b"k", b"v")
        with pytest.raises(WALCorruptionError, match="truncated"):
            decode_record_at(record[: RECORD_HEADER - 1], 0)


class TestLegacyDeserializeBounds:
    """Satellite: the in-memory WAL rejects oversized prefixes up front."""

    def test_roundtrip_still_works(self):
        wal = WriteAheadLog()
        wal.append_put(b"k1", b"v1")
        wal.append_delete(b"k2")
        clone = WriteAheadLog.deserialize(wal.serialize())
        assert list(clone.records()) == list(wal.records())

    def test_key_length_beyond_payload_rejected(self):
        # op=1, klen=9 but only 7 bytes follow.
        with pytest.raises(KVStoreError, match="key length"):
            WriteAheadLog.deserialize(
                b"\x01" + (9).to_bytes(4, "big") + b"garbage"
            )

    def test_value_length_beyond_payload_rejected(self):
        payload = (
            b"\x01"
            + (1).to_bytes(4, "big")
            + b"k"
            + (500).to_bytes(4, "big")
            + b"short"
        )
        with pytest.raises(KVStoreError, match="value length"):
            WriteAheadLog.deserialize(payload)

    def test_truncated_length_fields_rejected(self):
        with pytest.raises(KVStoreError):
            WriteAheadLog.deserialize(b"\x01\x00\x00")
        with pytest.raises(KVStoreError):
            WriteAheadLog.deserialize(b"\x09garbage")


class TestDurableWALGroupCommit:
    def _wal(self, mode, batch=4, seed=0):
        storage = SimulatedStorage(seed=seed)
        return storage, DurableWAL(
            storage, write_mode=mode, batch_size=batch
        )

    def test_sync_every_write_acks_immediately(self):
        storage, wal = self._wal(WriteMode.SYNC_EVERY_WRITE)
        for i in range(5):
            seqno = wal.append_put(f"k{i}".encode(), b"v")
            assert wal.synced_seqno == seqno
        assert wal.fsync_count == 5
        assert storage.fsync_count == 5

    def test_batch_mode_one_fsync_per_group(self):
        _, wal = self._wal(WriteMode.BATCH, batch=4)
        for _ in range(3):
            wal.append_put(b"k", b"v")
        assert wal.synced_seqno == 0  # group open, nothing acked
        wal.append_put(b"k", b"v")  # fills the group
        assert wal.synced_seqno == 4
        assert wal.fsync_count == 1

    def test_adaptive_batch_grows_on_full_groups_shrinks_on_partial(self):
        _, wal = self._wal(WriteMode.BATCH, batch=4)
        for _ in range(4):
            wal.append_put(b"k", b"v")
        assert wal.adaptive_batch_size == 8  # doubled after a full group
        wal.append_put(b"k", b"v")
        wal.sync()  # explicit barrier drains a partial group
        assert wal.adaptive_batch_size == 4  # halved
        assert wal.synced_seqno == 5

    def test_adaptive_batch_is_bounded(self):
        _, wal = self._wal(WriteMode.BATCH, batch=2)
        for _ in range(200):
            wal.append_put(b"k", b"v")
        assert wal.adaptive_batch_size <= 16  # capped at 8x initial
        _, wal = self._wal(WriteMode.BATCH, batch=4)
        for _ in range(20):
            wal.append_put(b"k", b"v")
            wal.sync()
        assert wal.adaptive_batch_size == 1  # floor

    def test_nosync_never_fsyncs(self):
        storage, wal = self._wal(WriteMode.NOSYNC)
        for _ in range(50):
            wal.append_put(b"k", b"v")
        assert wal.fsync_count == 0
        assert wal.synced_seqno == 0
        assert storage.total_unsynced() > 0

    def test_wal_bytes_counts_framed_bytes(self):
        _, wal = self._wal(WriteMode.NOSYNC)
        wal.append_put(b"key", b"value")
        assert wal.wal_bytes == RECORD_HEADER + 8

    def test_rotate_seals_and_truncate_below_deletes(self):
        storage, wal = self._wal(WriteMode.BATCH)
        wal.append_put(b"a", b"1")
        floor = wal.rotate()
        assert floor == 1
        assert wal.synced_seqno == 1  # sealed segments carry no
        wal.append_put(b"b", b"2")  # unsynced acked data
        assert storage.exists(segment_name(0))
        assert wal.truncate_below(floor) == 1
        assert not storage.exists(segment_name(0))
        assert storage.exists(segment_name(1))

    def test_segment_name_roundtrip(self):
        assert segment_index(segment_name(42)) == 42
        with pytest.raises(KVStoreError):
            segment_index("wal-junk.log")


def _fill_segment(storage, records, segment=0):
    payload = b"".join(encode_record(*r) for r in records)
    storage.append(segment_name(segment), payload)
    storage.fsync(segment_name(segment))
    return payload


class TestRecoveryReadSegments:
    RECORDS = [
        (1, OP_PUT, b"alpha", b"one"),
        (2, OP_PUT, b"beta", b"two"),
        (3, OP_DELETE, b"alpha", b""),
    ]

    def test_clean_log_recovers_everything(self):
        storage = SimulatedStorage()
        _fill_segment(storage, self.RECORDS)
        recovery = read_segments(storage)
        assert recovery.records == self.RECORDS
        assert recovery.torn_bytes == 0
        assert not recovery.mid_log_corruption

    def test_records_span_segments_in_order(self):
        storage = SimulatedStorage()
        _fill_segment(storage, self.RECORDS[:2], segment=0)
        _fill_segment(storage, self.RECORDS[2:], segment=1)
        recovery = read_segments(storage)
        assert recovery.records == self.RECORDS
        assert recovery.segments == [0, 1]

    def test_floor_skips_covered_segments(self):
        storage = SimulatedStorage()
        _fill_segment(storage, self.RECORDS[:2], segment=0)
        _fill_segment(storage, self.RECORDS[2:], segment=1)
        recovery = read_segments(storage, floor=1)
        assert recovery.records == self.RECORDS[2:]

    # -- satellite: golden fixtures at every byte boundary ---------------

    def test_torn_tail_cut_at_every_byte_of_final_record(self):
        """Recovery stops cleanly wherever the final record is cut —
        under paranoid_checks too: a torn tail is not corruption."""
        prefix = b"".join(encode_record(*r) for r in self.RECORDS[:2])
        final = encode_record(*self.RECORDS[2])
        for cut in range(len(final)):
            storage = SimulatedStorage()
            storage.append(segment_name(0), prefix + final[:cut])
            storage.fsync(segment_name(0))
            for paranoid in (False, True):
                recovery = read_segments(storage, paranoid=paranoid)
                assert recovery.records == self.RECORDS[:2], cut
                assert recovery.torn_bytes == cut
                assert not recovery.mid_log_corruption

    def test_corruption_at_every_byte_of_final_record_stops_cleanly(self):
        """A bit flip anywhere in the final record reads as a torn
        tail (no valid record follows it), so recovery keeps the
        intact prefix and drops the tail — paranoid included."""
        prefix = b"".join(encode_record(*r) for r in self.RECORDS[:2])
        final = encode_record(*self.RECORDS[2])
        for position in range(len(final)):
            corrupt = bytearray(final)
            corrupt[position] ^= 0x5A
            storage = SimulatedStorage()
            storage.append(segment_name(0), prefix + bytes(corrupt))
            storage.fsync(segment_name(0))
            for paranoid in (False, True):
                recovery = read_segments(storage, paranoid=paranoid)
                assert recovery.records == self.RECORDS[:2], position
                assert recovery.torn_bytes == len(final)

    def test_mid_log_corruption_raises_under_paranoid(self):
        """A bad record *followed by a valid one* cannot be a torn
        write: paranoid_checks raises, default mode stops and flags."""
        records = [encode_record(*r) for r in self.RECORDS]
        for position in range(len(records[0])):
            corrupt = bytearray(records[0])
            corrupt[position] ^= 0x5A
            payload = bytes(corrupt) + records[1] + records[2]
            storage = SimulatedStorage()
            storage.append(segment_name(0), payload)
            storage.fsync(segment_name(0))
            with pytest.raises(WALCorruptionError, match="mid-log"):
                read_segments(storage, paranoid=True)
            recovery = read_segments(storage, paranoid=False)
            assert recovery.records == []
            assert recovery.mid_log_corruption

    def test_damaged_sealed_segment_is_mid_log_corruption(self):
        storage = SimulatedStorage()
        torn = b"".join(
            encode_record(*r) for r in self.RECORDS[:2]
        )[:-3]  # sealed segment ends mid-record
        storage.append(segment_name(0), torn)
        storage.fsync(segment_name(0))
        _fill_segment(storage, self.RECORDS[2:], segment=1)
        with pytest.raises(WALCorruptionError, match="mid-log"):
            read_segments(storage, paranoid=True)
        recovery = read_segments(storage, paranoid=False)
        assert recovery.records == self.RECORDS[:1]
        assert recovery.mid_log_corruption

    def test_seqno_discontinuity_is_corruption(self):
        storage = SimulatedStorage()
        _fill_segment(
            storage,
            [(1, OP_PUT, b"a", b"1"), (3, OP_PUT, b"b", b"2")],
        )
        with pytest.raises(WALCorruptionError, match="discontinuity"):
            read_segments(storage, paranoid=True)
        recovery = read_segments(storage, paranoid=False)
        assert [r[0] for r in recovery.records] == [1]
        assert recovery.mid_log_corruption


class TestSSTableRoundTrip:
    def _sst(self, n=40, bloom=10):
        entries = [
            (f"key{i:04d}".encode(), f"value{i}".encode())
            for i in range(n)
        ]
        return SSTable.from_entries(
            file_id=123456789,
            entries=entries,
            block_entries=7,
            bloom_bits_per_key=bloom,
        )

    def test_roundtrip_preserves_identity_and_data(self):
        sst = self._sst()
        clone = SSTable.from_bytes(sst.to_bytes())
        assert clone.file_id == sst.file_id
        # The fingerprint survives: a reloaded SST keeps claiming its
        # original cache blocks instead of faking a collision.
        assert clone.fingerprint == sst.fingerprint
        assert clone.entry_count == sst.entry_count
        assert list(clone.iter_entries()) == list(sst.iter_entries())
        assert len(clone.blocks) == len(sst.blocks)
        for original, reloaded in zip(sst.blocks, clone.blocks):
            assert reloaded.payload == original.payload
            assert reloaded.owner_fingerprint == sst.fingerprint

    def test_roundtrip_rebuilds_bloom(self):
        sst = self._sst()
        clone = SSTable.from_bytes(sst.to_bytes())
        assert clone.bloom is not None
        for key, _ in sst.iter_entries():
            assert clone.bloom.may_contain(key)
        no_bloom = SSTable.from_bytes(self._sst(bloom=0).to_bytes())
        assert no_bloom.bloom is None

    def test_corrupt_payloads_rejected(self):
        blob = self._sst().to_bytes()
        with pytest.raises(KVStoreError):
            SSTable.from_bytes(b"XX" + blob[2:])
        with pytest.raises(KVStoreError):
            SSTable.from_bytes(blob[:-4])


def _durable_options(**overrides):
    defaults = dict(
        memtable_entries=8,
        block_entries=4,
        level0_file_limit=2,
        bloom_bits_per_key=0,
        write_mode=WriteMode.SYNC_EVERY_WRITE,
    )
    defaults.update(overrides)
    return Options(**defaults)


class TestDurableMiniRocks:
    def test_open_empty_then_reopen_preserves_state(self):
        storage = SimulatedStorage(seed=5)
        db = MiniRocks.open(
            storage, options=_durable_options(), rng=random.Random(1)
        )
        for i in range(45):
            db.put(f"k{i:03d}".encode(), f"v{i}".encode())
        db.delete(b"k007")
        assert db.durable_seqno == db.last_seqno == 46
        storage.crash()
        storage.restart()
        reopened = MiniRocks.open(
            storage, options=_durable_options(), rng=random.Random(2)
        )
        for i in range(45):
            expected = None if i == 7 else f"v{i}".encode()
            assert reopened.get(f"k{i:03d}".encode()) == expected

    def test_reopen_restores_assigned_ids_for_audits(self):
        storage = SimulatedStorage(seed=6)
        db = MiniRocks.open(
            storage, options=_durable_options(), rng=random.Random(3)
        )
        for i in range(40):
            db.put(f"k{i:03d}".encode(), b"v")
        minted = db.assigned_file_ids()
        assert minted
        storage.crash()
        storage.restart()
        reopened = MiniRocks.open(
            storage, options=_durable_options(), rng=random.Random(4)
        )
        assert reopened.assigned_file_ids() == minted

    def test_unsynced_batch_tail_lost_acked_prefix_survives(self):
        storage = SimulatedStorage(seed=8)
        options = _durable_options(
            memtable_entries=1000,
            write_mode=WriteMode.BATCH,
            wal_batch_size=4,
        )
        db = MiniRocks.open(storage, options=options, rng=random.Random(5))
        for i in range(10):
            db.put(f"k{i}".encode(), f"v{i}".encode())
        acked = db.durable_seqno
        # One full group of 4 fsyncs, then the adaptive batch doubles
        # to 8, so writes 5-10 (6 pending) are still unacked.
        assert acked == 4
        storage.crash()
        storage.restart()
        reopened = MiniRocks.open(
            storage, options=options, rng=random.Random(6)
        )
        survived = [
            i for i in range(10)
            if reopened.get(f"k{i}".encode()) == f"v{i}".encode()
        ]
        # All acked writes survive, and survivors form a prefix (no
        # unacked write resurrects ahead of a lost one).
        assert survived == list(range(len(survived)))
        assert len(survived) >= acked

    def test_explicit_sync_wal_is_a_durability_barrier(self):
        storage = SimulatedStorage(seed=10)
        options = _durable_options(
            memtable_entries=1000,
            write_mode=WriteMode.BATCH,
            wal_batch_size=64,
        )
        db = MiniRocks.open(storage, options=options, rng=random.Random(7))
        db.put(b"precious", b"data")
        assert db.durable_seqno == 0
        db.sync_wal()
        assert db.durable_seqno == 1
        storage.crash()
        storage.restart()
        reopened = MiniRocks.open(
            storage, options=options, rng=random.Random(8)
        )
        assert reopened.get(b"precious") == b"data"

    def test_nosync_mode_flush_is_the_only_durability(self):
        storage = SimulatedStorage(seed=11)
        options = _durable_options(
            memtable_entries=4, write_mode=WriteMode.NOSYNC
        )
        db = MiniRocks.open(storage, options=options, rng=random.Random(9))
        for i in range(6):  # one flush at 4, two unflushed
            db.put(f"k{i}".encode(), b"v")
        assert db.stats.fsync_count == 0
        assert db.durable_seqno == 4
        storage.crash()
        storage.restart()
        reopened = MiniRocks.open(
            storage, options=options, rng=random.Random(10)
        )
        for i in range(4):
            assert reopened.get(f"k{i}".encode()) == b"v"

    def test_flush_truncates_covered_segments(self):
        storage = SimulatedStorage(seed=12)
        db = MiniRocks.open(
            storage, options=_durable_options(), rng=random.Random(11)
        )
        for i in range(8):
            db.put(f"k{i}".encode(), b"v")
        from repro.kvstore.wal import SEGMENT_PREFIX

        live = storage.list(SEGMENT_PREFIX)
        assert all(segment_index(n) >= db._wal_floor for n in live)
        assert db._wal_floor >= 1

    def test_wal_and_fsync_counters_reach_dbstats(self):
        storage = SimulatedStorage(seed=13)
        db = MiniRocks.open(
            storage, options=_durable_options(memtable_entries=1000),
            rng=random.Random(12),
        )
        db.put(b"k", b"v")
        assert db.stats.fsync_count == 1
        assert db.stats.wal_bytes > 0

    def test_acked_writes_after_recovery_survive_second_crash(self):
        """Crash -> recover -> write + sync_wal -> crash: the first
        crash's torn tail must be neutralized during recovery, or the
        second recovery finds the tear in a now non-final segment,
        misreads it as mid-log corruption, and drops the new segment's
        acknowledged records (or refuses to open under paranoid)."""
        options = _durable_options(
            memtable_entries=1000,
            write_mode=WriteMode.BATCH,
            wal_batch_size=4,
            paranoid_checks=True,
        )
        for seed in range(40):
            storage = SimulatedStorage(seed=seed)
            db = MiniRocks.open(
                storage, options=options, rng=random.Random(1)
            )
            for i in range(10):  # one acked group of 4, 6 buffered
                db.put(f"k{i}".encode(), b"v0")
            storage.crash()
            storage.restart()
            mid = MiniRocks.open(
                storage, options=options, rng=random.Random(2)
            )
            for i in range(5):
                mid.put(f"p{i}".encode(), b"v1")
            mid.sync_wal()
            storage.crash()
            storage.restart()
            final = MiniRocks.open(
                storage, options=options, rng=random.Random(3)
            )
            for i in range(4):
                assert final.get(f"k{i}".encode()) == b"v0", seed
            for i in range(5):
                assert final.get(f"p{i}".encode()) == b"v1", seed

    def test_recovery_trims_torn_tail_and_reports_stats(self):
        storage = SimulatedStorage(seed=15)
        records = [(1, OP_PUT, b"a", b"1"), (2, OP_PUT, b"b", b"2")]
        clean = _fill_segment(storage, records)
        garbage = b"\x00garbage"  # too short for a header: a torn tail
        storage.append(segment_name(0), garbage)
        storage.fsync(segment_name(0))
        options = _durable_options(memtable_entries=1000)
        db = MiniRocks.open(storage, options=options, rng=random.Random(15))
        assert db.stats.wal_torn_bytes == len(garbage)
        assert db.stats.wal_mid_log_corruptions == 0
        assert db.get(b"a") == b"1"
        assert db.get(b"b") == b"2"
        # The tear is gone from disk: the segment now holds exactly
        # its valid prefix, so later recoveries see a clean log.
        assert storage.read(segment_name(0)) == clean
        again = MiniRocks.open(
            storage, options=options, rng=random.Random(16)
        )
        assert again.stats.wal_torn_bytes == 0

    def test_mid_log_corruption_is_counted_and_neutralized(self):
        storage = SimulatedStorage(seed=16)
        records = [
            encode_record(1, OP_PUT, b"a", b"1"),
            encode_record(2, OP_PUT, b"b", b"2"),
            encode_record(3, OP_PUT, b"c", b"3"),
        ]
        damaged = bytearray(records[1])
        damaged[5] ^= 0x5A  # valid record follows -> mid-log damage
        storage.append(
            segment_name(0), records[0] + bytes(damaged) + records[2]
        )
        storage.fsync(segment_name(0))
        options = _durable_options(memtable_entries=1000)
        db = MiniRocks.open(storage, options=options, rng=random.Random(17))
        assert db.stats.wal_mid_log_corruptions == 1
        assert db.stats.wal_torn_bytes == len(records[1]) + len(records[2])
        assert db.get(b"a") == b"1"
        assert db.get(b"b") is None  # conservatively dropped, but counted
        # Idempotent: a reopen sees the already-trimmed, clean log.
        again = MiniRocks.open(
            storage, options=options, rng=random.Random(18)
        )
        assert again.stats.wal_mid_log_corruptions == 0
        assert again.stats.wal_torn_bytes == 0
        assert again.get(b"a") == b"1"

    def test_paranoid_reopen_raises_on_mid_log_corruption(self):
        storage = SimulatedStorage(seed=14)
        options = _durable_options(memtable_entries=1000)
        db = MiniRocks.open(storage, options=options, rng=random.Random(13))
        for i in range(6):
            db.put(f"k{i}".encode(), b"v")
        # Vandalize the first record of the live segment on "disk".
        name = storage.list("wal-")[0]
        data = bytearray(storage.read(name))
        data[10] ^= 0xFF
        storage._files[name].data = data  # simulate media damage
        storage.crash()
        storage.restart()
        with pytest.raises(WALCorruptionError):
            MiniRocks.open(
                storage,
                options=_durable_options(
                    memtable_entries=1000, paranoid_checks=True
                ),
                rng=random.Random(14),
            )


class TestLegacyRecoverFromWal:
    """Satellite: replayed records stay durable and oversized replays
    flush."""

    def test_replay_reappends_to_live_wal(self):
        source = MiniRocks(Options(), rng=random.Random(1))
        source.put(b"a", b"1")
        source.delete(b"b")
        payload = source.wal.serialize()
        fresh = MiniRocks(Options(), rng=random.Random(2))
        assert fresh.recover_from_wal(payload) == 2
        # The recovered records must survive a *second* crash: the
        # live WAL now carries them again.
        assert fresh.wal.serialize() == payload
        second = MiniRocks(Options(), rng=random.Random(3))
        assert second.recover_from_wal(fresh.wal.serialize()) == 2
        assert second.get(b"a") == b"1"

    def test_oversized_replay_triggers_flush(self):
        source = MiniRocks(Options(memtable_entries=4), rng=random.Random(4))
        for i in range(10):
            source.put(f"k{i}".encode(), b"v")
        # Only the unflushed tail lives in the WAL; craft a payload
        # bigger than the memtable limit instead.
        wal = WriteAheadLog()
        for i in range(10):
            wal.append_put(f"k{i}".encode(), b"v")
        fresh = MiniRocks(Options(memtable_entries=4), rng=random.Random(5))
        fresh.recover_from_wal(wal.serialize())
        assert fresh.stats.flushes >= 1
        assert len(fresh.memtable) < 10
        for i in range(10):
            assert fresh.get(f"k{i}".encode()) == b"v"
