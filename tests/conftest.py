"""Shared fixtures for the test suite."""

import random

import pytest


@pytest.fixture
def rng():
    """A deterministically seeded RNG; tests must not use the global one."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def make_rng():
    """Factory for independently seeded RNGs."""

    def factory(seed: int) -> random.Random:
        return random.Random(seed)

    return factory
