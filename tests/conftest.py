"""Shared fixtures for the test suite."""

import os
import random

import pytest


@pytest.fixture
def rng():
    """A deterministically seeded RNG; tests must not use the global one."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def make_rng():
    """Factory for independently seeded RNGs."""

    def factory(seed: int) -> random.Random:
        return random.Random(seed)

    return factory


@pytest.fixture(autouse=True)
def _determinism_sanitizer_for_plan(request):
    """Run every ``plan``-marked test under the determinism sanitizer.

    The plan suites assert bit-identical results across worker splits;
    the sanitizer (see ``repro.devtools.sanitizer``) makes any
    unsanctioned nondeterminism — library code touching ``time.time``,
    the global ``random`` module, builtin ``hash`` on strings, OS
    entropy — raise ``DeterminismViolation`` at the offending call
    instead of flaking an equality assertion downstream. Opt out with
    ``REPRO_SANITIZE=0`` (e.g. while bisecting an unrelated failure).
    """
    if request.node.get_closest_marker("plan") is None:
        yield
        return
    if os.environ.get("REPRO_SANITIZE", "1") == "0":
        yield
        return
    from repro.devtools.sanitizer import determinism_sanitizer

    with determinism_sanitizer():
        yield
