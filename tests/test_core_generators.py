"""Unit tests for the five ID-generation algorithms (repro.core)."""

import random

import pytest

from repro.core import (
    BinsGenerator,
    BinsStarGenerator,
    ClusterGenerator,
    ClusterStarGenerator,
    IDGenerator,
    RandomGenerator,
    SkewAwareGenerator,
)
from repro.errors import ConfigurationError, IDSpaceExhaustedError

ALL_FACTORIES = [
    ("random", lambda m, rng: RandomGenerator(m, rng)),
    ("cluster", lambda m, rng: ClusterGenerator(m, rng)),
    ("bins3", lambda m, rng: BinsGenerator(m, 3, rng)),
    ("bins1", lambda m, rng: BinsGenerator(m, 1, rng)),
    ("cluster_star", lambda m, rng: ClusterStarGenerator(m, rng)),
    ("bins_star", lambda m, rng: BinsStarGenerator(m, rng)),
    ("skew_aware", lambda m, rng: SkewAwareGenerator(m, 4, 16, rng)),
]


@pytest.mark.parametrize("name,factory", ALL_FACTORIES)
def test_ids_in_range_and_distinct(name, factory):
    m = 256  # large enough that even Bins*'s 2^C−1 schedule covers count
    generator = factory(m, random.Random(7))
    count = 30
    ids = generator.take(count)
    assert len(ids) == count
    assert all(0 <= value < m for value in ids)
    assert len(set(ids)) == count, f"{name} repeated an ID"


@pytest.mark.parametrize("name,factory", ALL_FACTORIES)
def test_count_tracks_production(name, factory):
    generator = factory(256, random.Random(3))
    assert generator.count == 0
    generator.take(5)
    assert generator.count == 5


@pytest.mark.parametrize(
    "name,factory",
    [f for f in ALL_FACTORIES if f[0] not in ("bins_star", "cluster_star")],
)
def test_full_exhaustion_is_a_permutation(name, factory):
    m = 24
    generator = factory(m, random.Random(11))
    ids = generator.take(m)
    assert sorted(ids) == list(range(m))
    with pytest.raises(IDSpaceExhaustedError):
        generator.next_id()


def test_invalid_universe_rejected():
    with pytest.raises(ConfigurationError):
        RandomGenerator(0)
    with pytest.raises(ConfigurationError):
        ClusterGenerator(-5)


def test_take_negative_rejected():
    with pytest.raises(ConfigurationError):
        RandomGenerator(10).take(-1)


def test_iter_ids_stops_at_exhaustion():
    generator = ClusterGenerator(6, random.Random(0))
    assert sorted(generator.iter_ids()) == list(range(6))


# -- Random ---------------------------------------------------------------


def test_random_dense_fallback_consistency():
    """Crossing the 50% density boundary must not repeat or skip IDs."""
    m = 40
    generator = RandomGenerator(m, random.Random(5))
    ids = generator.take(m)
    assert sorted(ids) == list(range(m))


def test_random_huge_universe():
    generator = RandomGenerator(1 << 128, random.Random(1))
    ids = generator.take(100)
    assert len(set(ids)) == 100
    assert all(0 <= value < 1 << 128 for value in ids)


def test_random_different_seeds_differ():
    a = RandomGenerator(1 << 64, random.Random(1)).take(10)
    b = RandomGenerator(1 << 64, random.Random(2)).take(10)
    assert a != b


def test_random_same_seed_reproduces():
    a = RandomGenerator(1 << 64, random.Random(9)).take(10)
    b = RandomGenerator(1 << 64, random.Random(9)).take(10)
    assert a == b


# -- Cluster ---------------------------------------------------------------


def test_cluster_is_sequential_mod_m():
    m = 100
    generator = ClusterGenerator(m, random.Random(3))
    start = generator.start
    ids = generator.take(10)
    assert ids == [(start + i) % m for i in range(10)]


def test_cluster_wraps_around():
    generator = ClusterGenerator(5, random.Random(0))
    ids = generator.take(5)
    assert sorted(ids) == [0, 1, 2, 3, 4]
    # Consecutive differences are 1 mod 5.
    for a, b in zip(ids, ids[1:]):
        assert (b - a) % 5 == 1


def test_cluster_start_uniformity():
    """Starts should cover the space (sanity, not a statistical test)."""
    starts = {
        ClusterGenerator(8, random.Random(seed)).start for seed in range(200)
    }
    assert starts == set(range(8))


# -- Bins(k) ----------------------------------------------------------------


def test_bins_emits_whole_bins_in_order():
    m, k = 20, 4
    generator = BinsGenerator(m, k, random.Random(2))
    ids = generator.take(12)
    for block_start in range(0, 12, k):
        chunk = ids[block_start : block_start + k]
        bin_index = chunk[0] // k
        assert chunk == [bin_index * k + off for off in range(k)]


def test_bins_leftovers_come_last_in_order():
    m, k = 11, 3  # 3 bins of 3, leftovers {9, 10}
    generator = BinsGenerator(m, k, random.Random(4))
    ids = generator.take(11)
    assert ids[9:] == [9, 10]


def test_bins_k_equals_m_is_identity_like():
    m = 12
    generator = BinsGenerator(m, m, random.Random(1))
    assert generator.take(m) == list(range(m))


def test_bins_k1_matches_random_distribution_shape():
    """Bins(1) must be a uniform permutation (spot check: first ID)."""
    m = 6
    counts = [0] * m
    for seed in range(600):
        counts[BinsGenerator(m, 1, random.Random(seed)).next_id()] += 1
    assert min(counts) > 0.5 * (600 / m)


def test_bins_invalid_k():
    with pytest.raises(ConfigurationError):
        BinsGenerator(10, 0)
    with pytest.raises(ConfigurationError):
        BinsGenerator(10, 11)


def test_bins_opened_counter():
    generator = BinsGenerator(20, 4, random.Random(0))
    generator.take(9)  # 2 full bins + 1 started
    assert generator.bins_opened() == 3


# -- Cluster* ----------------------------------------------------------------


def test_cluster_star_runs_grow_exponentially():
    generator = ClusterStarGenerator(1 << 20, random.Random(8))
    generator.take(1 + 2 + 4 + 8 + 16)
    lengths = [length for _, length in generator.runs]
    assert lengths == [1, 2, 4, 8, 16]


def test_cluster_star_runs_never_overlap():
    generator = ClusterStarGenerator(512, random.Random(3))
    ids = generator.take(300)
    assert len(set(ids)) == 300


def test_cluster_star_ids_follow_runs():
    generator = ClusterStarGenerator(1 << 16, random.Random(5))
    ids = generator.take(7)  # runs 1, 2, 4
    runs = generator.runs
    expected = []
    for start, length in runs:
        expected.extend((start + offset) % (1 << 16) for offset in range(length))
    assert ids == expected


def test_cluster_star_shrinks_final_runs_and_exhausts():
    m = 32
    generator = ClusterStarGenerator(m, random.Random(1))
    ids = generator.take(m)  # must be able to emit the entire universe
    assert sorted(ids) == list(range(m))
    with pytest.raises(IDSpaceExhaustedError):
        generator.next_id()


def test_cluster_star_open_run_remaining():
    generator = ClusterStarGenerator(1 << 10, random.Random(2))
    generator.take(2)  # run1 done, run2 has 1 left
    assert generator.open_run_remaining == 1


# -- Bins* ---------------------------------------------------------------------


def test_bins_star_chunk_arithmetic():
    generator = BinsStarGenerator(1 << 16, random.Random(0))
    c = generator.num_chunks
    assert c * (1 << (c - 1)) <= 1 << 16
    total_bins = sum(generator.bins_in_chunk(i) for i in range(c))
    assert total_bins == (1 << c) - 1
    assert generator.scheduled_capacity == (1 << c) - 1


def test_bins_star_bin_sizes_double():
    generator = BinsStarGenerator(1 << 12, random.Random(0))
    sizes = [generator.bin_size(i) for i in range(generator.num_chunks)]
    assert sizes == [1 << i for i in range(generator.num_chunks)]


def test_bins_star_ids_land_in_correct_chunks():
    m = 1 << 12
    generator = BinsStarGenerator(m, random.Random(6))
    chunk_size = generator.chunk_size
    taken = 0
    for chunk in range(min(4, generator.num_chunks)):
        size = generator.bin_size(chunk)
        ids = generator.take(size)
        taken += size
        for value in ids:
            assert value // chunk_size == chunk
        # Within a bin: consecutive ascending.
        assert ids == list(range(ids[0], ids[0] + size))


def test_bins_star_schedule_exhaustion_raises():
    m = 16
    generator = BinsStarGenerator(m, random.Random(2))
    generator.take(generator.scheduled_capacity)
    with pytest.raises(IDSpaceExhaustedError):
        generator.next_id()


def test_bins_star_fallback_random_completes_universe():
    m = 64
    generator = BinsStarGenerator(m, random.Random(2), fallback_random=True)
    ids = generator.take(m)
    assert sorted(ids) == list(range(m))


def test_bins_star_rejects_tiny_universe():
    with pytest.raises(ConfigurationError):
        BinsStarGenerator(3, random.Random(0))


def test_bins_star_remaining_capacity():
    generator = BinsStarGenerator(1 << 10, random.Random(1))
    cap = generator.scheduled_capacity
    generator.take(5)
    assert generator.remaining_capacity == cap - 5


# -- SkewAware --------------------------------------------------------------


def test_skew_aware_tail_is_deterministic_suffix():
    m, i, j = 1 << 10, 4, 20
    generator = SkewAwareGenerator(m, i, j, random.Random(3))
    ids = generator.take(j)
    tail = ids[i:]
    assert tail == list(range(m - (j - i), m))


def test_skew_aware_prefix_stays_off_the_tail():
    m, i, j = 256, 8, 64
    generator = SkewAwareGenerator(m, i, j, random.Random(5))
    prefix = generator.take(i)
    assert all(value < m - (j - i) for value in prefix)


def test_skew_aware_two_light_instances_rarely_collide():
    m, i, j = 4096, 2, 512
    collisions = 0
    for seed in range(300):
        a = set(SkewAwareGenerator(m, i, j, random.Random(2 * seed)).take(i))
        b = set(
            SkewAwareGenerator(m, i, j, random.Random(2 * seed + 1)).take(i)
        )
        collisions += bool(a & b)
    # p ≈ i/(m−j+i) ≈ 1/1792; 300 trials should see ~0.
    assert collisions <= 3


def test_skew_aware_validation():
    with pytest.raises(ConfigurationError):
        SkewAwareGenerator(100, 0, 5)
    with pytest.raises(ConfigurationError):
        SkewAwareGenerator(100, 10, 5)
    with pytest.raises(ConfigurationError):
        SkewAwareGenerator(100, 10, 150)


def test_repr_mentions_state():
    generator = ClusterGenerator(99, random.Random(0))
    generator.take(3)
    assert "99" in repr(generator) and "3" in repr(generator)
