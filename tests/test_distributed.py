"""Integration tests for nodes, migration, and the cluster simulator."""

import random

import pytest

from repro.distributed.cluster import ClusterSimulator
from repro.distributed.migration import (
    audit_id_uniqueness,
    migrate_coldest_to_warmest,
    migrate_random,
)
from repro.distributed.node import Node
from repro.errors import ConfigurationError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.options import Options


def small_options(**overrides):
    defaults = dict(
        memtable_entries=4,
        block_entries=2,
        level0_file_limit=2,
        id_universe=1 << 32,
        id_algorithm="cluster",
        bloom_bits_per_key=0,
    )
    defaults.update(overrides)
    return Options(**defaults)


def loaded_node(name, seed, keys=60):
    node = Node(
        name, small_options(), BlockCache(256), rng=random.Random(seed)
    )
    for i in range(keys):
        node.put(f"{name}-k{i:03d}".encode(), b"v")
    node.db.flush()
    return node


class TestNode:
    def test_data_path(self):
        node = loaded_node("n1", 1)
        assert node.get(b"n1-k001") == b"v"
        node.delete(b"n1-k001")
        assert node.get(b"n1-k001") is None

    def test_exportable_excludes_l0(self):
        node = loaded_node("n1", 1)
        for level, _sst in node.exportable_files():
            assert level >= 1

    def test_export_import_cycle(self):
        donor = loaded_node("donor", 1)
        receiver = loaded_node("receiver", 2, keys=4)
        exportable = donor.exportable_files()
        assert exportable, "donor should have compacted files"
        level, sst = exportable[0]
        donor.export_file(level, sst)
        receiver.import_file(level, sst)
        assert sst.file_id in receiver.received_files
        # The data is now served by the receiver.
        key = sst.min_key
        assert receiver.get(key) is not None

    def test_load_metric(self):
        heavy = loaded_node("h", 1, keys=80)
        light = loaded_node("l", 2, keys=8)
        assert heavy.load() > light.load()


class TestMigrationPolicies:
    def test_coldest_to_warmest_reduces_imbalance(self):
        cache = BlockCache(256)
        heavy = Node("heavy", small_options(), cache, random.Random(1))
        light = Node("light", small_options(), cache, random.Random(2))
        for i in range(100):
            heavy.put(f"k{i:03d}".encode(), b"v" * 4)
        heavy.db.flush()
        before = heavy.load() - light.load()
        events = migrate_coldest_to_warmest(
            [heavy, light], random.Random(3), max_moves=3
        )
        assert events
        assert heavy.load() - light.load() < before
        for event in events:
            assert event.source == "heavy"
            assert event.destination == "light"

    def test_migrate_random_moves_files(self):
        nodes = [loaded_node(f"n{i}", i) for i in range(3)]
        events = migrate_random(nodes, random.Random(1), moves=5)
        assert len(events) >= 1

    def test_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            migrate_coldest_to_warmest(
                [loaded_node("solo", 1)], random.Random(0)
            )


class TestAudit:
    def test_no_duplicates_with_big_universe(self):
        nodes = [loaded_node(f"n{i}", i) for i in range(3)]
        audit = audit_id_uniqueness(nodes)
        assert not audit.collided
        assert audit.collision_count == 0
        assert audit.distinct_ids == audit.total_ids_assigned

    def test_duplicates_with_tiny_universe(self):
        nodes = [
            Node(
                f"n{i}",
                small_options(id_universe=16, id_algorithm="random"),
                BlockCache(64),
                rng=random.Random(i),
            )
            for i in range(3)
        ]
        for node in nodes:
            for i in range(12):
                node.put(f"k{i}".encode(), b"v")
            node.db.flush()
        audit = audit_id_uniqueness(nodes)
        assert audit.collided
        assert audit.collision_count >= 1


class TestClusterSimulator:
    def test_routing_is_consistent(self):
        sim = ClusterSimulator(3, small_options, seed=1)
        sim.put(b"key", b"value")
        assert sim.get(b"key") == b"value"

    def test_workload_and_report(self):
        sim = ClusterSimulator(3, small_options, seed=1)
        operations = [
            ("put", f"k{i:03d}".encode(), b"v") for i in range(60)
        ] + [("get", f"k{i:03d}".encode(), b"") for i in range(60)] + [
            ("delete", b"k000", b"")
        ]
        sim.run_workload(operations, rebalance_every=30)
        report = sim.report()
        assert report.operations == 121
        assert report.audit.total_ids_assigned > 0
        assert not report.corrupted  # 2^32 universe: no collisions

    def test_unknown_op_rejected(self):
        sim = ClusterSimulator(2, small_options, seed=1)
        with pytest.raises(ConfigurationError):
            sim.run_workload([("frobnicate", b"k", b"")])

    def test_rebalance_records_events(self):
        sim = ClusterSimulator(2, small_options, seed=1)
        # Load node-asymmetric data (routing by hash is roughly even, so
        # pile everything through one node directly).
        for i in range(80):
            sim.nodes[0].put(f"k{i:03d}".encode(), b"v")
        sim.nodes[0].db.flush()
        events = sim.rebalance(max_moves=2)
        assert len(sim.migration_events) == len(events)

    def test_shared_cache_across_nodes(self):
        sim = ClusterSimulator(3, small_options, seed=1)
        assert all(node.db.cache is sim.cache for node in sim.nodes)

    def test_needs_one_node(self):
        with pytest.raises(ConfigurationError):
            ClusterSimulator(0, small_options)

    def test_end_to_end_corruption_with_tiny_universe(self):
        """The paper's failure mode, reproduced deterministically-ish."""

        def tiny():
            return small_options(id_universe=64, id_algorithm="random")

        corrupted_any = False
        for seed in range(6):
            sim = ClusterSimulator(4, tiny, cache_blocks=512, seed=seed)
            rng = random.Random(seed)
            for i in range(240):
                sim.put(f"k{rng.randrange(60):03d}".encode(), b"v")
            sim.flush_all()
            for i in range(240):
                sim.get(f"k{rng.randrange(60):03d}".encode())
            if sim.report().corrupted:
                corrupted_any = True
                break
        assert corrupted_any, "64-ID universe must collide within 6 seeds"
