"""Tests for ASCII charts and JSON export of experiment results."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.framework import ExperimentResult
from repro.experiments.render import (
    ascii_chart,
    chart_from_result,
    result_to_json,
)


def make_result():
    result = ExperimentResult(
        experiment_id="T1",
        title="test",
        claim="claims",
        columns=["x", "a", "b"],
    )
    for x in (1, 10, 100, 1000):
        result.rows.append({"x": x, "a": x * 2.0, "b": x**1.5, "_h": []})
    result.add_check("ok", True, "fine")
    result.notes.append("note")
    return result


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart(
            [1, 10, 100],
            {"alpha": [1, 10, 100], "beta": [100, 10, 1]},
            title="demo",
        )
        assert "demo" in chart
        assert "o=alpha" in chart and "x=beta" in chart
        assert "o" in chart and "x" in chart

    def test_log_axes_drop_nonpositive(self):
        chart = ascii_chart([1, 10], {"s": [0.0, 5.0]})
        # Only one positive point survives; chart still renders.
        assert "s" in chart

    def test_all_nonpositive(self):
        chart = ascii_chart([1, 2], {"s": [0, -1]}, title="t")
        assert "no positive data" in chart

    def test_linear_axes(self):
        chart = ascii_chart(
            [0, 5, 10], {"s": [0, 5, 10]}, log_x=False, log_y=False
        )
        assert "|" in chart

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([1], {})
        with pytest.raises(ConfigurationError):
            ascii_chart([1], {"s": [1]}, width=4)

    def test_monotone_series_renders_monotone(self):
        """Markers of an increasing series must not descend."""
        chart = ascii_chart(
            [1, 10, 100, 1000],
            {"up": [1, 10, 100, 1000]},
            width=40,
            height=10,
        )
        rows = [line for line in chart.splitlines() if "|" in line]
        positions = []
        for row_index, line in enumerate(rows):
            body = line.split("|", 1)[1]
            for column, char in enumerate(body):
                if char == "o":
                    positions.append((column, row_index))
        positions.sort()
        for (c1, r1), (c2, r2) in zip(positions, positions[1:]):
            assert r2 <= r1  # later x → same or higher on screen


class TestChartFromResult:
    def test_selects_columns(self):
        chart = chart_from_result(make_result(), "x", ["a", "b"])
        assert "o=a" in chart and "x=b" in chart

    def test_missing_x_rejected(self):
        result = ExperimentResult("T", "t", "c", columns=["x"])
        result.rows.append({"x": "text"})
        with pytest.raises(ConfigurationError):
            chart_from_result(result, "x", ["a"])


class TestJsonExport:
    def test_roundtrips_through_json(self):
        payload = json.loads(result_to_json(make_result()))
        assert payload["experiment_id"] == "T1"
        assert payload["all_passed"] is True
        assert len(payload["rows"]) == 4
        assert payload["rows"][0]["x"] == 1
        assert "_h" not in payload["rows"][0]
        assert payload["checks"][0]["name"] == "ok"
        assert payload["notes"] == ["note"]


class TestCLIIntegration:
    def test_experiment_json_flag(self, capsys):
        from repro.cli import main

        assert main(["experiment", "E4", "--quick", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "E4"

    def test_worst_subcommand(self, capsys):
        from repro.cli import main

        assert main(
            ["worst", "cluster", "--n", "3", "--d", "24", "--m", "4096"]
        ) == 0
        assert "worst found profile" in capsys.readouterr().out
