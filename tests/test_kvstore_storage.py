"""Unit tests for the fault-injecting simulated storage layer."""

import pytest

from repro.errors import (
    ConfigurationError,
    KVStoreError,
    SimulatedCrashError,
)
from repro.kvstore.storage import CrashPoint, SimulatedStorage


class TestBufferedVsSynced:
    def test_append_is_buffered_until_fsync(self):
        st = SimulatedStorage()
        st.append("f", b"hello")
        assert st.read("f") == b"hello"  # page cache serves reads
        assert st.unsynced_bytes("f") == 5
        st.fsync("f")
        assert st.unsynced_bytes("f") == 0

    def test_crash_drops_unsynced_suffix_keeps_synced_prefix(self):
        st = SimulatedStorage(seed=3)
        st.append("f", b"durable")
        st.fsync("f")
        st.append("f", b"buffered")
        st.crash()
        st.restart()
        data = st.read("f")
        assert data.startswith(b"durable")
        # Whatever survives beyond the synced prefix is a strict
        # prefix of the buffered bytes plus optional garbage, never
        # more than was written.
        assert len(data) <= len(b"durable") + len(b"buffered") + 8

    def test_fully_synced_file_survives_crash_bit_exact(self):
        st = SimulatedStorage(seed=9)
        st.append("f", b"abcdef")
        st.fsync("f")
        st.crash()
        assert st.restart() == []  # nothing torn
        assert st.read("f") == b"abcdef"

    def test_torn_tail_is_deterministic_in_seed_and_restart(self):
        def run(seed):
            st = SimulatedStorage(seed=seed)
            st.append("f", b"synced!")
            st.fsync("f")
            st.append("f", b"0123456789abcdef")
            st.crash()
            st.restart()
            return st.read("f")

        assert run(7) == run(7)
        # Different seeds eventually tear differently (not a hard
        # guarantee per pair, but these two differ).
        outcomes = {run(seed) for seed in range(8)}
        assert len(outcomes) > 1

    def test_restart_marks_survivors_synced(self):
        st = SimulatedStorage(seed=1)
        st.append("f", b"x" * 100)
        st.crash()
        st.restart()
        if st.exists("f"):
            assert st.unsynced_bytes("f") == 0


class TestMetadataJournaling:
    def test_write_atomic_is_all_or_nothing(self):
        st = SimulatedStorage(seed=2)
        st.write_atomic("m", b"old-state")
        st.append("other", b"unsynced")
        st.crash()
        st.restart()
        assert st.read("m") == b"old-state"

    def test_write_atomic_replaces_whole_content(self):
        st = SimulatedStorage()
        st.write_atomic("m", b"v1")
        st.write_atomic("m", b"version-two")
        assert st.read("m") == b"version-two"
        assert st.unsynced_bytes("m") == 0

    def test_rename_and_delete_are_durable(self):
        st = SimulatedStorage(seed=4)
        st.write_atomic("a", b"payload")
        st.rename("a", "b")
        st.write_atomic("gone", b"x")
        st.delete("gone")
        st.crash()
        st.restart()
        assert not st.exists("a")
        assert st.read("b") == b"payload"
        assert not st.exists("gone")

    def test_missing_file_operations_raise(self):
        st = SimulatedStorage()
        with pytest.raises(KVStoreError):
            st.read("nope")
        with pytest.raises(KVStoreError):
            st.fsync("nope")
        with pytest.raises(KVStoreError):
            st.delete("nope")
        with pytest.raises(KVStoreError):
            st.rename("nope", "x")


class TestCrashPoints:
    def test_labeled_crash_fires_at_nth_occurrence(self):
        st = SimulatedStorage()
        st.plan_crash(at=2, label="fsync")
        st.append("f", b"a")
        st.fsync("f")  # occurrence 1: survives
        st.append("f", b"b")
        with pytest.raises(SimulatedCrashError):
            st.fsync("f")  # occurrence 2: boom
        assert st.crashed

    def test_crash_fires_before_the_op_takes_effect(self):
        st = SimulatedStorage()
        st.append("f", b"kept")
        st.fsync("f")
        # Occurrences count from lifetime start: "kept" was append #1.
        st.plan_crash(at=2, label="append")
        with pytest.raises(SimulatedCrashError):
            st.append("f", b"never-lands")
        st.restart()
        assert st.read("f") == b"kept"

    def test_nth_op_crash_counts_all_mutations(self):
        st = SimulatedStorage()
        st.plan_crash(at=3)  # label=None: any mutating op
        st.append("f", b"a")
        st.fsync("f")
        with pytest.raises(SimulatedCrashError):
            st.append("f", b"b")

    def test_reads_are_not_crash_eligible(self):
        st = SimulatedStorage()
        st.append("f", b"x")
        st.plan_crash(at=2)
        st.read("f")
        st.exists("f")
        st.list()
        st.size("f")
        assert not st.crashed

    def test_crashed_storage_refuses_everything_until_restart(self):
        st = SimulatedStorage()
        st.append("f", b"x")
        st.crash()
        for call in (
            lambda: st.read("f"),
            lambda: st.append("f", b"y"),
            lambda: st.fsync("f"),
            lambda: st.list(),
        ):
            with pytest.raises(KVStoreError):
                call()
        st.restart()
        st.append("f", b"y")  # live again

    def test_restart_resets_counters_and_plan(self):
        st = SimulatedStorage()
        st.plan_crash(at=1, label="append")
        with pytest.raises(SimulatedCrashError):
            st.append("f", b"x")
        st.restart()
        assert st.restarts == 1
        assert st.op_count == 0
        st.append("f", b"x")  # the old plan is gone
        assert not st.crashed

    def test_restart_without_crash_raises(self):
        with pytest.raises(KVStoreError):
            SimulatedStorage().restart()

    def test_crash_point_validation(self):
        with pytest.raises(ConfigurationError):
            CrashPoint(at=0)
        assert CrashPoint(at=1, label="flush").label == "flush"
