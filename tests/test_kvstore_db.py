"""MiniRocks integration tests: manifest, compaction, the DB facade."""

import random

import pytest

from repro.errors import CorruptionDetectedError, KVStoreError
from repro.kvstore.blockcache import BlockCache
from repro.kvstore.compaction import (
    level_file_budget,
    merge_tables,
    pick_compaction,
)
from repro.kvstore.db import MiniRocks
from repro.kvstore.manifest import Manifest
from repro.kvstore.memtable import TOMBSTONE
from repro.kvstore.options import Options
from repro.kvstore.sstable import SSTable


def sst_from(file_id, pairs, block_entries=4):
    return SSTable.from_entries(file_id, sorted(pairs), block_entries)


class TestManifest:
    def test_add_and_query(self):
        manifest = Manifest(3)
        sst = sst_from(1, [(b"a", b"1"), (b"c", b"2")])
        manifest.add_file(0, sst)
        assert manifest.file_count() == 1
        assert manifest.file_count(0) == 1
        assert [s for _, s in manifest.live_files()] == [sst]
        assert manifest.assigned_ids == [1]

    def test_l0_newest_first(self):
        manifest = Manifest(3)
        old = sst_from(1, [(b"a", b"old")])
        new = sst_from(2, [(b"a", b"new")])
        manifest.add_file(0, old)
        manifest.add_file(0, new)
        assert manifest.level(0) == [new, old]

    def test_l1_overlap_rejected(self):
        manifest = Manifest(3)
        manifest.add_file(1, sst_from(1, [(b"a", b"1"), (b"m", b"2")]))
        with pytest.raises(KVStoreError):
            manifest.add_file(1, sst_from(2, [(b"c", b"3")]))

    def test_l1_sorted_by_key(self):
        manifest = Manifest(3)
        late = sst_from(1, [(b"x", b"1")])
        early = sst_from(2, [(b"a", b"1")])
        manifest.add_file(1, late)
        manifest.add_file(1, early)
        assert manifest.level(1) == [early, late]

    def test_candidates_order(self):
        manifest = Manifest(3)
        l1 = sst_from(1, [(b"a", b"l1"), (b"z", b"l1")])
        l0 = sst_from(2, [(b"a", b"l0")])
        manifest.add_file(1, l1)
        manifest.add_file(0, l0)
        candidates = list(manifest.candidates_for_key(b"a"))
        assert [level for level, _ in candidates] == [0, 1]

    def test_remove_unknown_rejected(self):
        manifest = Manifest(3)
        with pytest.raises(KVStoreError):
            manifest.remove_file(0, sst_from(1, [(b"a", b"1")]))

    def test_detach_attach_does_not_rerecord_id(self):
        manifest_a = Manifest(3)
        manifest_b = Manifest(3)
        sst = sst_from(9, [(b"a", b"1")])
        manifest_a.add_file(1, sst)
        manifest_a.detach_file(1, sst)
        manifest_b.attach_file(1, sst)
        assert manifest_a.assigned_ids == [9]
        assert manifest_b.assigned_ids == []


class TestMergeTables:
    def test_newest_wins(self):
        new = sst_from(1, [(b"a", b"new"), (b"b", b"2")])
        old = sst_from(2, [(b"a", b"old"), (b"c", b"3")])
        merged = merge_tables([new, old], drop_tombstones=False)
        assert merged == [(b"a", b"new"), (b"b", b"2"), (b"c", b"3")]

    def test_tombstones_dropped_at_bottom(self):
        new = sst_from(1, [(b"a", TOMBSTONE)])
        old = sst_from(2, [(b"a", b"x"), (b"b", b"y")])
        assert merge_tables([new, old], drop_tombstones=True) == [
            (b"b", b"y")
        ]
        kept = merge_tables([new, old], drop_tombstones=False)
        assert (b"a", TOMBSTONE) in kept

    def test_three_way(self):
        a = sst_from(1, [(b"k", b"v3")])
        b = sst_from(2, [(b"k", b"v2")])
        c = sst_from(3, [(b"k", b"v1")])
        assert merge_tables([a, b, c], False) == [(b"k", b"v3")]


class TestCompactionPicking:
    def test_budget_growth(self):
        options = Options(level0_file_limit=4, level_size_multiplier=3)
        assert level_file_budget(options, 0) == 4
        assert level_file_budget(options, 2) == 36

    def test_no_compaction_needed(self):
        manifest = Manifest(3)
        options = Options(level0_file_limit=4)
        manifest.add_file(0, sst_from(1, [(b"a", b"1")]))
        assert pick_compaction(manifest, options) is None

    def test_l0_trigger_includes_gap_files(self):
        options = Options(level0_file_limit=2)
        manifest = Manifest(3)
        manifest.add_file(0, sst_from(1, [(b"a", b"1")]))
        manifest.add_file(0, sst_from(2, [(b"z", b"1")]))
        # L1 file strictly between the two L0 ranges must be included.
        gap = sst_from(3, [(b"m", b"1")])
        manifest.add_file(1, gap)
        job = pick_compaction(manifest, options)
        assert job is not None
        assert gap in job.inputs_lower


class TestMiniRocks:
    def _db(self, **overrides):
        defaults = dict(
            memtable_entries=8,
            block_entries=4,
            id_universe=1 << 32,
            id_algorithm="cluster",
        )
        defaults.update(overrides)
        return MiniRocks(Options(**defaults), rng=random.Random(1))

    def test_put_get_roundtrip(self):
        db = self._db()
        db.put(b"hello", b"world")
        assert db.get(b"hello") == b"world"

    def test_get_missing(self):
        assert self._db().get(b"nope") is None

    def test_delete_shadows_older_versions(self):
        db = self._db()
        db.put(b"k", b"v")
        db.flush()
        db.delete(b"k")
        assert db.get(b"k") is None
        db.flush()
        assert db.get(b"k") is None

    def test_overwrite_across_flushes(self):
        db = self._db()
        db.put(b"k", b"v1")
        db.flush()
        db.put(b"k", b"v2")
        assert db.get(b"k") == b"v2"
        db.flush()
        assert db.get(b"k") == b"v2"

    def test_flush_assigns_file_ids(self):
        db = self._db()
        for i in range(20):
            db.put(f"k{i:03d}".encode(), b"v")
        db.flush()
        assert len(db.assigned_file_ids()) >= 2
        # Cluster IDs: consecutive.
        ids = db.assigned_file_ids()
        for a, b in zip(ids, ids[1:]):
            assert (b - a) % (1 << 32) == 1

    def test_compaction_preserves_data(self):
        db = self._db(memtable_entries=4, level0_file_limit=2)
        reference = {}
        rng = random.Random(3)
        for i in range(400):
            key = f"k{rng.randrange(80):03d}".encode()
            value = f"v{i}".encode()
            db.put(key, value)
            reference[key] = value
        assert db.stats.compactions > 0
        for key, value in reference.items():
            assert db.get(key) == value

    def test_scan_merges_all_sources(self):
        db = self._db(memtable_entries=4)
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        db.put(b"c", b"3")
        db.put(b"d", b"4")  # triggers flush
        db.put(b"b", b"2x")  # newer, in memtable
        db.delete(b"c")
        result = db.scan(b"a", b"z")
        assert result == [(b"a", b"1"), (b"b", b"2x"), (b"d", b"4")]

    def test_scan_with_limit_and_bounds(self):
        db = self._db()
        for i in range(10):
            db.put(f"k{i}".encode(), b"v")
        assert len(db.scan(b"k2", b"k6", limit=2)) == 2
        assert db.scan(b"x", b"a") == []

    def test_multi_get(self):
        db = self._db()
        db.put(b"a", b"1")
        assert db.multi_get([b"a", b"b"]) == [b"1", None]

    def test_wal_recovery(self):
        db = self._db()
        db.put(b"k1", b"v1")
        db.delete(b"k2")
        payload = db.wal.serialize()
        fresh = self._db()
        assert fresh.recover_from_wal(payload) == 2
        assert fresh.get(b"k1") == b"v1"
        assert fresh.get(b"k2") is None

    def test_wal_disabled(self):
        db = self._db(use_wal=False)
        db.put(b"k", b"v")
        with pytest.raises(KVStoreError):
            db.recover_from_wal(b"")

    def test_paranoid_checks_raise_on_collision(self):
        """Two stores with the same tiny universe and a shared cache."""
        cache = BlockCache(64)
        options = dict(
            memtable_entries=2,
            block_entries=2,
            id_universe=2,  # collision guaranteed quickly
            id_algorithm="cluster",
            paranoid_checks=True,
            bloom_bits_per_key=0,
        )
        a = MiniRocks(Options(**options), cache=cache, rng=random.Random(1))
        b = MiniRocks(Options(**options), cache=cache, rng=random.Random(2))
        for store in (a, b):
            store.put(b"k1", b"v")
            store.put(b"k2", b"v")  # flush -> SST with id in {0,1}
            store.put(b"k3", b"v")
            store.put(b"k4", b"v")  # second SST: both ids used
        with pytest.raises(CorruptionDetectedError):
            for _ in range(4):
                a.get(b"k1"), a.get(b"k3")
                b.get(b"k1"), b.get(b"k3")

    def test_stats_accumulate(self):
        db = self._db()
        db.put(b"a", b"1")
        db.get(b"a")
        db.delete(b"a")
        assert db.stats.puts == 1
        assert db.stats.gets == 1
        assert db.stats.deletes == 1
