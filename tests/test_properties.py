"""Property-based tests (hypothesis) for core invariants."""

import random
from fractions import Fraction

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.profiles import DemandProfile
from repro.analysis.combinatorics import (
    circular_disjoint_arcs_probability,
    disjoint_subsets_probability,
    disjoint_subsets_probability_estimate,
)
from repro.analysis.exact import (
    bins_collision_probability,
    cluster_collision_probability,
    random_collision_probability,
)
from repro.core.bins import BinsGenerator
from repro.core.cluster import ClusterGenerator
from repro.core.cluster_star import ClusterStarGenerator
from repro.core.intervals import CircularIntervalSet, split_arc
from repro.core.random_gen import RandomGenerator
from repro.idspace.encoding import (
    id_from_base32,
    id_from_bytes,
    id_from_hex,
    id_to_base32,
    id_to_bytes,
    id_to_hex,
)
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.sstable import _decode_entries, _encode_entries
from repro.kvstore.wal import WriteAheadLog
from repro.simulation.montecarlo import wilson_interval
from repro.simulation.seeds import derive_seed

# Moderate example counts: the suite must stay fast and deterministic.
FAST = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- generator invariants -----------------------------------------------------


@FAST
@given(
    m=st.integers(8, 512),
    count_fraction=st.floats(0.1, 1.0),
    seed=st.integers(0, 2**32),
)
def test_random_prefix_is_permutation_prefix(m, count_fraction, seed):
    count = max(1, int(m * count_fraction))
    ids = RandomGenerator(m, random.Random(seed)).take(count)
    assert len(set(ids)) == count
    assert all(0 <= value < m for value in ids)


@FAST
@given(m=st.integers(2, 10**9), count=st.integers(1, 64), seed=st.integers())
def test_cluster_ids_are_consecutive_mod_m(m, count, seed):
    count = min(count, m)
    ids = ClusterGenerator(m, random.Random(seed)).take(count)
    for a, b in zip(ids, ids[1:]):
        assert (b - a) % m == 1


@FAST
@given(
    m=st.integers(4, 256),
    k=st.integers(1, 16),
    seed=st.integers(0, 2**32),
)
def test_bins_prefix_distinct_and_bin_aligned(m, k, seed):
    k = min(k, m)
    generator = BinsGenerator(m, k, random.Random(seed))
    count = min(m, 3 * k + 1)
    ids = generator.take(count)
    assert len(set(ids)) == count
    # Every complete group of k IDs is one ascending bin.
    for start in range(0, count - k + 1, k):
        chunk = ids[start : start + k]
        assert chunk == list(range(chunk[0], chunk[0] + k))
        assert chunk[0] % k == 0


@SLOW
@given(m=st.integers(16, 2048), seed=st.integers(0, 2**32))
def test_cluster_star_runs_disjoint_and_doubling(m, seed):
    generator = ClusterStarGenerator(m, random.Random(seed))
    count = min(m // 2, 100)
    ids = generator.take(count)
    assert len(set(ids)) == count
    lengths = [length for _, length in generator.runs]
    for previous, current in zip(lengths, lengths[1:]):
        assert current <= 2 * previous  # never grows faster than 2x


# -- interval arithmetic -------------------------------------------------------


@FAST
@given(
    m=st.integers(1, 1000),
    start=st.integers(-2000, 2000),
    length=st.integers(1, 1200),
)
def test_split_arc_covers_expected_positions(m, start, length):
    pieces = split_arc(start, length, m)
    covered = set()
    for lo, hi in pieces:
        assert 0 <= lo < hi <= m
        covered.update(range(lo, hi))
    expected = {(start + i) % m for i in range(min(length, m))}
    assert covered == expected


@SLOW
@given(
    m=st.integers(16, 300),
    arcs=st.lists(
        st.tuples(st.integers(0, 299), st.integers(1, 20)), max_size=6
    ),
    run_length=st.integers(1, 10),
    seed=st.integers(0, 2**32),
)
def test_sampled_free_start_never_overlaps(m, arcs, run_length, seed):
    cis = CircularIntervalSet(m)
    for start, length in arcs:
        cis.add(start % m, min(length, m))
    if cis.count_free_starts(run_length) == 0:
        return
    start = cis.sample_free_start(run_length, random.Random(seed))
    assert not cis.overlaps(start, run_length)


# -- profile algebra ------------------------------------------------------------


@FAST
@given(st.lists(st.integers(1, 10**6), min_size=1, max_size=12))
def test_rounding_produces_dominated_powers_of_two(demands):
    profile = DemandProfile(tuple(demands))
    rounded = profile.rounded()
    assert rounded.n == profile.n
    for original, reduced in zip(profile, rounded):
        assert reduced <= original
        assert reduced & (reduced - 1) == 0  # power of two
    # Idempotence (Lemma 19's D⁻ is a fixpoint).
    assert rounded.rounded() == rounded


@FAST
@given(st.lists(st.integers(1, 1000), min_size=1, max_size=10))
def test_rank_distribution_counts_all_entries(demands):
    rounded = DemandProfile(tuple(demands)).rounded()
    ranks = rounded.rank_distribution()
    assert sum(ranks) == rounded.n
    assert ranks[-1] >= 1  # top rank is realized


# -- exact probability invariants ------------------------------------------------


@SLOW
@given(
    m=st.integers(8, 4096),
    demands=st.lists(st.integers(1, 16), min_size=2, max_size=5),
    seed=st.integers(0, 10**6),
)
def test_exact_probabilities_are_permutation_invariant(m, demands, seed):
    if sum(demands) > m:
        return
    profile = DemandProfile(tuple(demands))
    shuffled = list(demands)
    random.Random(seed).shuffle(shuffled)
    other = DemandProfile(tuple(shuffled))
    assert cluster_collision_probability(
        m, profile
    ) == cluster_collision_probability(m, other)
    assert random_collision_probability(
        m, profile
    ) == random_collision_probability(m, other)


@SLOW
@given(
    m=st.integers(64, 4096),
    demands=st.lists(st.integers(1, 16), min_size=2, max_size=5),
)
def test_cluster_dominates_random_pointwise(m, demands):
    """Corollary 4 as a hard invariant: p_Cluster = O(p_Random);
    with exact values the constant is 1 + o(1) — we assert 2."""
    profile = DemandProfile(tuple(demands))
    if profile.total > m // 2:
        return
    cluster = cluster_collision_probability(m, profile)
    random_p = random_collision_probability(m, profile)
    assert cluster <= 2 * random_p + Fraction(1, m)


@SLOW
@given(
    universe=st.integers(10, 10**6),
    sizes=st.lists(st.integers(0, 40), min_size=1, max_size=5),
)
def test_disjoint_probability_estimate_close_to_exact(universe, sizes):
    if sum(sizes) > universe // 4:
        return
    exact = float(disjoint_subsets_probability(universe, sizes))
    estimate = disjoint_subsets_probability_estimate(universe, sizes)
    assert abs(estimate - exact) <= 0.02 * max(exact, 1e-12)


@SLOW
@given(
    m=st.integers(4, 512),
    lengths=st.lists(st.integers(1, 32), min_size=1, max_size=4),
)
def test_circular_arcs_probability_in_unit_interval(m, lengths):
    p = circular_disjoint_arcs_probability(m, lengths)
    assert 0 <= p <= 1


# -- encodings & storage round trips -----------------------------------------------


@FAST
@given(value=st.integers(0, (1 << 128) - 1))
def test_byte_hex_base32_roundtrip(value):
    m = 1 << 128
    assert id_from_bytes(id_to_bytes(value, m), m) == value
    assert id_from_hex(id_to_hex(value, m), m) == value
    assert id_from_base32(id_to_base32(value, m), m) == value


@FAST
@given(
    entries=st.lists(
        st.tuples(st.binary(min_size=1, max_size=20), st.binary(max_size=40)),
        max_size=10,
    )
)
def test_block_encoding_roundtrip(entries):
    assert _decode_entries(_encode_entries(entries)) == entries


@FAST
@given(
    records=st.lists(
        st.tuples(
            st.booleans(),
            st.binary(min_size=1, max_size=16),
            st.binary(max_size=16),
        ),
        max_size=12,
    )
)
def test_wal_roundtrip(records):
    wal = WriteAheadLog()
    for is_put, key, value in records:
        if is_put:
            wal.append_put(key, value)
        else:
            wal.append_delete(key)
    restored = WriteAheadLog.deserialize(wal.serialize())
    assert list(restored.records()) == list(wal.records())


@FAST
@given(st.lists(st.binary(min_size=1, max_size=24), max_size=50))
def test_bloom_never_false_negative(keys):
    bloom = BloomFilter(max(len(keys), 1), 8)
    bloom.add_all(keys)
    assert all(bloom.may_contain(key) for key in keys)


@FAST
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),
            st.integers(0, 20),
            st.binary(min_size=1, max_size=8),
        ),
        max_size=60,
    )
)
def test_memtable_matches_dict_model(ops):
    table = MemTable()
    model = {}
    for is_put, key_index, value in ops:
        key = f"key{key_index}".encode()
        if is_put:
            table.put(key, value)
            model[key] = value
        else:
            table.delete(key)
            model[key] = TOMBSTONE
    for key, expected in model.items():
        assert table.get(key) == expected
    assert [k for k, _ in table.sorted_entries()] == sorted(model)


# -- statistics ------------------------------------------------------------------


@FAST
@given(
    successes=st.integers(0, 500),
    extra=st.integers(0, 500),
)
def test_wilson_interval_well_formed(successes, extra):
    trials = successes + extra
    if trials == 0:
        return
    low, high = wilson_interval(successes, trials)
    phat = successes / trials
    assert 0.0 <= low <= phat <= high <= 1.0


@FAST
@given(root=st.integers(), path=st.lists(st.integers(), max_size=4))
def test_derive_seed_is_64_bit(root, path):
    value = derive_seed(root, *path)
    assert 0 <= value < 1 << 64
