"""Unit tests for workload generators (distributions, YCSB, demand)."""

import random

import pytest

from repro.errors import ConfigurationError, ProfileError
from repro.workloads.demand import (
    doubling_demand_sweep,
    max_skew_profile,
    random_compositions,
    skewed_pair_grid,
    uniform_profiles,
    zipf_profiles,
)
from repro.workloads.distributions import (
    LatestPicker,
    ScrambledZipfianPicker,
    UniformPicker,
    ZipfianPicker,
)
from repro.workloads.ycsb import (
    WorkloadSpec,
    encode_key,
    full_workload,
    load_phase,
    make_value,
    run_phase,
)


class TestPickers:
    def test_uniform_range(self, rng):
        picker = UniformPicker(10)
        picks = [picker.pick(rng) for _ in range(500)]
        assert set(picks) <= set(range(10))
        assert len(set(picks)) == 10

    def test_zipf_is_skewed(self, rng):
        picker = ZipfianPicker(100, theta=0.99)
        picks = [picker.pick(rng) for _ in range(3000)]
        head = sum(1 for p in picks if p < 10)
        assert head > 0.4 * len(picks)  # top 10% gets >40% of traffic

    def test_zipf_theta_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfianPicker(10, theta=0.0)

    def test_scrambled_zipf_spreads_hot_keys(self, rng):
        picker = ScrambledZipfianPicker(1000, theta=0.99)
        picks = [picker.pick(rng) for _ in range(2000)]
        hottest = max(set(picks), key=picks.count)
        assert hottest >= 10  # the hot key is (whp) not simply rank 0

    def test_latest_prefers_recent(self, rng):
        picker = LatestPicker(1000)
        picks = [picker.pick(rng) for _ in range(1000)]
        assert all(0 <= p < 1000 for p in picks)
        recent = sum(1 for p in picks if p >= 900)
        assert recent > 0.5 * len(picks)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformPicker(0)
        with pytest.raises(ConfigurationError):
            LatestPicker(0)


class TestYCSB:
    def test_keys_sortable_fixed_width(self):
        assert encode_key(5) < encode_key(10) < encode_key(200)

    def test_make_value_size(self, rng):
        assert len(make_value(rng, 48)) == 48

    def test_load_phase_counts(self, rng):
        spec = WorkloadSpec(record_count=25)
        ops = list(load_phase(spec, rng))
        assert len(ops) == 25
        assert all(op == "put" for op, _, _ in ops)

    def test_run_phase_mix_b(self, rng):
        spec = WorkloadSpec(
            workload="b", record_count=100, operation_count=2000
        )
        ops = list(run_phase(spec, rng))
        reads = sum(1 for op, _, _ in ops if op == "get")
        assert 0.9 < reads / len(ops) <= 1.0

    def test_run_phase_d_inserts_new_keys(self, rng):
        spec = WorkloadSpec(
            workload="d", record_count=50, operation_count=400
        )
        ops = list(run_phase(spec, rng))
        inserted = [
            key for op, key, _ in ops if op == "put"
        ]
        assert inserted
        assert all(key >= encode_key(50) for key in inserted)

    def test_rmw_emits_get_then_put(self, rng):
        spec = WorkloadSpec(
            workload="f", record_count=20, operation_count=100
        )
        ops = list(run_phase(spec, rng))
        assert len(ops) >= 100  # RMW expands to two ops
        assert any(op == "put" for op, _, _ in ops)

    def test_unknown_workload(self, rng):
        spec = WorkloadSpec(workload="z")
        with pytest.raises(ConfigurationError):
            list(run_phase(spec, rng))

    def test_full_workload_is_load_then_run(self, rng):
        spec = WorkloadSpec(
            workload="c", record_count=10, operation_count=20
        )
        ops = list(full_workload(spec, rng))
        assert [op for op, _, _ in ops[:10]] == ["put"] * 10
        assert len(ops) == 30


class TestDemandGenerators:
    def test_uniform_profiles(self):
        profiles = list(uniform_profiles([2, 4], 8))
        assert [p.demands for p in profiles] == [(8, 8), (8,) * 4]

    def test_skewed_pair_grid(self):
        grid = list(skewed_pair_grid(2))
        assert [(i, j) for i, j, _ in grid] == [
            (0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2),
        ]
        for i, j, profile in grid:
            assert profile.demands == (1 << i, 1 << j)

    def test_random_compositions_family(self):
        for profile in random_compositions(4, 32, 20, seed=3):
            assert profile.n == 4 and profile.total == 32

    def test_zipf_profiles(self):
        results = list(zipf_profiles(4, 64, [0.5, 1.5], seed=1))
        assert [skew for skew, _ in results] == [0.5, 1.5]
        assert all(p.total == 64 for _, p in results)

    def test_max_skew(self):
        assert max_skew_profile(4, 10).demands == (7, 1, 1, 1)
        with pytest.raises(ProfileError):
            max_skew_profile(1, 10)

    def test_doubling_sweep(self):
        assert list(doubling_demand_sweep(3, 25)) == [3, 6, 12, 24]
        with pytest.raises(ProfileError):
            list(doubling_demand_sweep(0, 10))
