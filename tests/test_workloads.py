"""Unit tests for workload generators (distributions, YCSB, demand)."""

import random

import pytest

from repro.errors import ConfigurationError, ProfileError
from repro.workloads.demand import (
    doubling_demand_sweep,
    max_skew_profile,
    random_compositions,
    skewed_pair_grid,
    uniform_profiles,
    zipf_profiles,
)
from repro.workloads.distributions import (
    LatestPicker,
    ScrambledZipfianPicker,
    UniformPicker,
    ZipfianApproxPicker,
    ZipfianPicker,
    make_zipfian,
)
from repro.workloads.ycsb import (
    WorkloadSpec,
    encode_key,
    full_workload,
    load_phase,
    make_value,
    run_phase,
)


class TestPickers:
    def test_uniform_range(self, rng):
        picker = UniformPicker(10)
        picks = [picker.pick(rng) for _ in range(500)]
        assert set(picks) <= set(range(10))
        assert len(set(picks)) == 10

    def test_zipf_is_skewed(self, rng):
        picker = ZipfianPicker(100, theta=0.99)
        picks = [picker.pick(rng) for _ in range(3000)]
        head = sum(1 for p in picks if p < 10)
        assert head > 0.4 * len(picks)  # top 10% gets >40% of traffic

    def test_zipf_theta_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfianPicker(10, theta=0.0)

    def test_scrambled_zipf_spreads_hot_keys(self, rng):
        picker = ScrambledZipfianPicker(1000, theta=0.99)
        picks = [picker.pick(rng) for _ in range(2000)]
        hottest = max(set(picks), key=picks.count)
        assert hottest >= 10  # the hot key is (whp) not simply rank 0

    def test_latest_prefers_recent(self, rng):
        picker = LatestPicker(1000)
        picks = [picker.pick(rng) for _ in range(1000)]
        assert all(0 <= p < 1000 for p in picks)
        recent = sum(1 for p in picks if p >= 900)
        assert recent > 0.5 * len(picks)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformPicker(0)
        with pytest.raises(ConfigurationError):
            LatestPicker(0)

    def test_latest_respects_window_cap(self, rng):
        picker = LatestPicker(50_000)
        picks = [picker.pick(rng) for _ in range(500)]
        assert all(
            50_000 - LatestPicker.WINDOW_CAP <= p < 50_000 for p in picks
        )

    def test_latest_record_insert_advances_window(self, rng):
        picker = LatestPicker(100)
        picker.record_insert()
        picker.record_insert(4)
        assert picker.insert_count == 105
        picks = [picker.pick(rng) for _ in range(300)]
        assert all(0 <= p < 105 for p in picks)
        assert max(picks) >= 100  # the new keys actually draw reads

    def test_latest_pick_is_deterministic(self):
        a = LatestPicker(2000)
        b = LatestPicker(2000)
        rng_a, rng_b = random.Random(77), random.Random(77)
        assert [a.pick(rng_a) for _ in range(200)] == [
            b.pick(rng_b) for _ in range(200)
        ]


class TestZipfianApprox:
    """The constant-time YCSB sampler against the exact oracle."""

    def test_tv_distance_to_exact_is_small(self):
        # Same distribution family, two samplers: empirical
        # total-variation distance must be approximation error plus
        # sampling noise only (~0.04 at these sizes).
        n, theta, samples = 500, 0.9, 100_000
        exact = ZipfianPicker(n, theta)
        approx = ZipfianApproxPicker(n, theta)
        rng_e, rng_a = random.Random(11), random.Random(12)
        counts_e, counts_a = [0] * n, [0] * n
        for _ in range(samples):
            counts_e[exact.pick(rng_e)] += 1
            counts_a[approx.pick(rng_a)] += 1
        tv = 0.5 * sum(
            abs(a - b) for a, b in zip(counts_e, counts_a)
        ) / samples
        assert tv < 0.08, f"TV distance {tv:.4f} too large"

    def test_initializes_ten_million_keys_fast(self):
        import time

        start = time.perf_counter()
        picker = ZipfianApproxPicker(10**7)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"init took {elapsed:.2f}s"
        rng = random.Random(0)
        picks = [picker.pick(rng) for _ in range(2000)]
        assert all(0 <= p < 10**7 for p in picks)
        # Zipf head: rank 0 alone carries several percent of the mass.
        assert picks.count(0) > 0.02 * len(picks)

    def test_theta_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfianApproxPicker(100, theta=1.0)
        with pytest.raises(ConfigurationError):
            ZipfianApproxPicker(100, theta=0.0)
        with pytest.raises(ConfigurationError):
            ZipfianApproxPicker(0)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_degenerate_key_spaces(self, rng, n):
        # n <= 2 makes the eta closed form 0/0; construction and
        # sampling must still work (regression: ZeroDivisionError).
        picker = ZipfianApproxPicker(n)
        picks = [picker.pick(rng) for _ in range(200)]
        assert all(0 <= p < n for p in picks)
        if n > 1:
            assert picks.count(0) > picks.count(1)

    def test_make_zipfian_dispatch(self):
        assert isinstance(make_zipfian(100), ZipfianPicker)
        assert isinstance(
            make_zipfian(100, exact_max=10), ZipfianApproxPicker
        )

    def test_make_zipfian_exact_fallback_for_theta_out_of_domain(self):
        # theta >= 1 is outside the approximation's domain; large n
        # must fall back to the exact picker instead of raising
        # (regression: ScrambledZipfianPicker(n > exact_max, theta=1.0)
        # used to crash).
        picker = make_zipfian(100, theta=1.0, exact_max=10)
        assert isinstance(picker, ZipfianPicker)
        rng = random.Random(1)
        assert all(0 <= picker.pick(rng) < 100 for _ in range(50))
        sampled = ScrambledZipfianPicker(200, theta=1.5)
        assert 0 <= sampled.pick(rng) < 200

    def test_scrambled_hot_key_mass_at_scale(self):
        # n beyond EXACT_CDF_MAX: the scrambled picker runs on the
        # approximate sampler; scrambling must preserve the popularity
        # mass while spreading it over the key space.
        picker = ScrambledZipfianPicker(1_000_000, theta=0.99)
        rng = random.Random(21)
        picks = [picker.pick(rng) for _ in range(20_000)]
        counts = {}
        for p in picks:
            counts[p] = counts.get(p, 0) + 1
        top10 = sorted(counts.values(), reverse=True)[:10]
        top_mass = sum(top10) / len(picks)
        assert 0.10 < top_mass < 0.40, f"top-10 mass {top_mass:.3f}"
        # ... and the hot keys are spread, not the 10 smallest indices.
        hottest = max(counts, key=counts.get)
        assert hottest >= 1000


class TestYCSB:
    def test_keys_sortable_fixed_width(self):
        assert encode_key(5) < encode_key(10) < encode_key(200)

    def test_make_value_size(self, rng):
        assert len(make_value(rng, 48)) == 48

    def test_load_phase_counts(self, rng):
        spec = WorkloadSpec(record_count=25)
        ops = list(load_phase(spec, rng))
        assert len(ops) == 25
        assert all(op == "put" for op, _, _ in ops)

    def test_run_phase_mix_b(self, rng):
        spec = WorkloadSpec(
            workload="b", record_count=100, operation_count=2000
        )
        ops = list(run_phase(spec, rng))
        reads = sum(1 for op, _, _ in ops if op == "get")
        assert 0.9 < reads / len(ops) <= 1.0

    def test_run_phase_d_inserts_new_keys(self, rng):
        spec = WorkloadSpec(
            workload="d", record_count=50, operation_count=400
        )
        ops = list(run_phase(spec, rng))
        inserted = [
            key for op, key, _ in ops if op == "put"
        ]
        assert inserted
        assert all(key >= encode_key(50) for key in inserted)

    def test_run_phase_d_inserts_are_contiguous(self, rng):
        # The insert branch is the single source of truth for the key
        # counter and the latest window: inserted keys must be exactly
        # record_count, record_count+1, ... with no gaps or repeats.
        spec = WorkloadSpec(
            workload="d", record_count=40, operation_count=600
        )
        inserted = [
            key for op, key, _ in run_phase(spec, rng) if op == "put"
        ]
        assert inserted == [encode_key(40 + i) for i in range(len(inserted))]

    def test_run_phase_d_survives_zero_inserts(self, rng):
        # With so few ops the 5% insert probability often rounds to
        # zero actual inserts; reads must still stay in bounds (the
        # in-stream assertion raises if the window drifted).
        for seed in range(20):
            spec = WorkloadSpec(
                workload="d", record_count=30, operation_count=5
            )
            ops = list(run_phase(spec, random.Random(seed)))
            assert len(ops) == 5
            for op, key, _ in ops:
                if op == "get":
                    assert key < encode_key(35)

    @pytest.mark.parametrize("workload", list("abcdef"))
    def test_every_workload_emits_exact_logical_count(self, rng, workload):
        # Regression: workload F used to emit its RMW pair inline and
        # overshoot operation_count by ~25%.
        spec = WorkloadSpec(
            workload=workload, record_count=100, operation_count=800
        )
        assert len(list(run_phase(spec, rng))) == 800

    def test_rmw_is_one_logical_op(self, rng):
        spec = WorkloadSpec(
            workload="f", record_count=20, operation_count=1000
        )
        ops = list(run_phase(spec, rng))
        assert len(ops) == 1000
        kinds = {op for op, _, _ in ops}
        assert kinds == {"get", "rmw"}
        rmw_fraction = sum(1 for op, _, _ in ops if op == "rmw") / len(ops)
        assert 0.4 < rmw_fraction < 0.6
        for op, _key, value in ops:
            if op == "rmw":
                assert len(value) == spec.value_size  # carries the new value

    def test_workload_e_scan_mix(self, rng):
        spec = WorkloadSpec(
            workload="e", record_count=100, operation_count=1000,
            max_scan_length=25,
        )
        ops = list(run_phase(spec, rng))
        assert len(ops) == 1000
        scans = [(key, value) for op, key, value in ops if op == "scan"]
        inserts = [key for op, key, _ in ops if op == "put"]
        assert 0.9 < len(scans) / len(ops) <= 1.0
        assert inserts and all(key >= encode_key(100) for key in inserts)
        for _key, value in scans:
            assert 1 <= int(value) <= 25

    def test_workload_e_rejects_bad_scan_length(self, rng):
        spec = WorkloadSpec(workload="e", max_scan_length=0)
        with pytest.raises(ConfigurationError):
            list(run_phase(spec, rng))

    def test_unknown_workload(self, rng):
        spec = WorkloadSpec(workload="z")
        with pytest.raises(ConfigurationError):
            list(run_phase(spec, rng))

    def test_full_workload_is_load_then_run(self, rng):
        spec = WorkloadSpec(
            workload="c", record_count=10, operation_count=20
        )
        ops = list(full_workload(spec, rng))
        assert [op for op, _, _ in ops[:10]] == ["put"] * 10
        assert len(ops) == 30

    @pytest.mark.parametrize("workload", list("abcdef"))
    def test_full_workload_stream_is_seed_deterministic(self, workload):
        spec = WorkloadSpec(
            workload=workload, record_count=50, operation_count=200
        )
        first = list(full_workload(spec, random.Random(123)))
        second = list(full_workload(spec, random.Random(123)))
        other = list(full_workload(spec, random.Random(124)))
        assert first == second
        assert first != other


class TestDemandGenerators:
    def test_uniform_profiles(self):
        profiles = list(uniform_profiles([2, 4], 8))
        assert [p.demands for p in profiles] == [(8, 8), (8,) * 4]

    def test_skewed_pair_grid(self):
        grid = list(skewed_pair_grid(2))
        assert [(i, j) for i, j, _ in grid] == [
            (0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2),
        ]
        for i, j, profile in grid:
            assert profile.demands == (1 << i, 1 << j)

    def test_random_compositions_family(self):
        for profile in random_compositions(4, 32, 20, seed=3):
            assert profile.n == 4 and profile.total == 32

    def test_zipf_profiles(self):
        results = list(zipf_profiles(4, 64, [0.5, 1.5], seed=1))
        assert [skew for skew, _ in results] == [0.5, 1.5]
        assert all(p.total == 64 for _, p in results)

    def test_max_skew(self):
        assert max_skew_profile(4, 10).demands == (7, 1, 1, 1)
        with pytest.raises(ProfileError):
            max_skew_profile(1, 10)

    def test_doubling_sweep(self):
        assert list(doubling_demand_sweep(3, 25)) == [3, 6, 12, 24]
        with pytest.raises(ProfileError):
            list(doubling_demand_sweep(0, 10))
