"""Unit tests for demand profiles and families (repro.adversary.profiles)."""

import math
import random

import pytest

from repro.adversary.profiles import (
    DemandProfile,
    ProfileFamily,
    count_profiles_d1,
    family_d1,
    family_dinf,
    geometric_profile,
    is_epsilon_good,
    sample_profile_d1,
    zipf_profile,
)
from repro.errors import ProfileError


class TestDemandProfile:
    def test_norms(self):
        profile = DemandProfile.of(3, 4, 5)
        assert profile.n == 3
        assert profile.total == 12
        assert profile.l2_squared == 50
        assert profile.max_demand == 5

    def test_uniform(self):
        profile = DemandProfile.uniform(4, 7)
        assert profile.demands == (7, 7, 7, 7)

    def test_rejects_zero_demand(self):
        with pytest.raises(ProfileError):
            DemandProfile.of(3, 0)

    def test_trivial(self):
        assert DemandProfile.of(5).is_trivial
        assert not DemandProfile.of(5, 1).is_trivial

    def test_iteration_and_indexing(self):
        profile = DemandProfile.of(1, 2, 3)
        assert list(profile) == [1, 2, 3]
        assert profile[1] == 2
        assert len(profile) == 3

    def test_sorted_desc(self):
        assert DemandProfile.of(1, 5, 3).sorted_desc().demands == (5, 3, 1)


class TestRounding:
    def test_paper_example(self):
        """§7.2: D = (9, 5, 4, 42) rounds to D⁻ = (8, 4, 4, 8)."""
        assert DemandProfile.of(9, 5, 4, 42).rounded().demands == (
            8, 4, 4, 8,
        )

    def test_no_unique_max_untouched(self):
        assert DemandProfile.of(8, 8, 2).rounded().demands == (8, 8, 2)

    def test_idempotent(self):
        for demands in [(9, 5, 4, 42), (7, 7), (1, 2, 3, 4, 100)]:
            once = DemandProfile(demands).rounded()
            assert once.rounded() == once

    def test_rank_distribution(self):
        profile = DemandProfile.of(8, 4, 4, 8)
        # ranks: 2^0:0, 2^1:0, 2^2:2, 2^3:2
        assert profile.rank_distribution() == (0, 0, 2, 2)

    def test_rank_distribution_rejects_non_powers(self):
        with pytest.raises(ProfileError):
            DemandProfile.of(3, 4).rank_distribution()

    def test_rank_distribution_reconstructs_profile(self):
        profile = DemandProfile.of(1, 2, 2, 16).rounded()
        ranks = profile.rank_distribution()
        rebuilt = []
        for index, count in enumerate(ranks):
            rebuilt.extend([1 << index] * count)
        assert sorted(rebuilt) == sorted(profile.demands)


class TestEpsilonGood:
    def test_uniform_is_good(self):
        profile = DemandProfile.uniform(10, 8)
        assert is_epsilon_good(profile, 0.25)

    def test_highly_skewed_is_bad(self):
        # One entry has everything: only 1 entry > εd/n for n=20.
        profile = DemandProfile((981,) + (1,) * 19)
        assert not is_epsilon_good(profile, 0.25)

    def test_epsilon_validation(self):
        with pytest.raises(ProfileError):
            is_epsilon_good(DemandProfile.of(1, 1), 0.75)


class TestSampling:
    def test_sample_in_family(self):
        rng = random.Random(5)
        for _ in range(50):
            profile = sample_profile_d1(5, 40, rng)
            assert profile.n == 5
            assert profile.total == 40
            assert all(d >= 1 for d in profile)

    def test_count_matches_formula(self):
        assert count_profiles_d1(3, 6) == math.comb(5, 2)

    def test_sample_uniformity_small_case(self):
        """D1(2, 4) = {(1,3),(2,2),(3,1)} — each must appear ~1/3."""
        rng = random.Random(9)
        counts = {}
        trials = 3000
        for _ in range(trials):
            profile = sample_profile_d1(2, 4, rng)
            counts[profile.demands] = counts.get(profile.demands, 0) + 1
        assert set(counts) == {(1, 3), (2, 2), (3, 1)}
        for value in counts.values():
            assert abs(value - trials / 3) < trials * 0.08

    def test_sample_validation(self):
        with pytest.raises(ProfileError):
            sample_profile_d1(5, 3, random.Random(0))


class TestGenerators:
    def test_geometric(self):
        profile = geometric_profile(4, 16)
        assert profile.demands == (16, 8, 4, 2)

    def test_geometric_floors_at_one(self):
        assert geometric_profile(5, 4).demands == (4, 2, 1, 1, 1)

    def test_zipf_total_exact(self):
        rng = random.Random(1)
        for skew in (0.5, 1.0, 2.0):
            profile = zipf_profile(6, 100, skew, rng)
            assert profile.total == 100
            assert profile.n == 6
            assert all(d >= 1 for d in profile)

    def test_zipf_validation(self):
        with pytest.raises(ProfileError):
            zipf_profile(10, 5, 1.0, random.Random(0))


class TestFamilies:
    def test_d1_membership(self):
        family = family_d1(3, 10)
        assert family.contains(DemandProfile.of(5, 3, 2))
        assert not family.contains(DemandProfile.of(5, 5))
        assert not family.contains(DemandProfile.of(4, 3, 2))

    def test_dinf_membership(self):
        family = family_dinf(4, 5)
        assert family.contains(DemandProfile.of(5, 5))
        assert family.contains(DemandProfile.of(1, 1, 1, 1))
        assert not family.contains(DemandProfile.of(6, 1))
        assert not family.contains(DemandProfile.of(1, 1, 1, 1, 1))

    def test_d1_continuation(self):
        family = family_d1(3, 10)
        assert family.admits_continuation([4, 3])  # can still reach (.. , ..)
        assert not family.admits_continuation([9, 1])  # no room for 3rd >= 1
        assert not family.admits_continuation([1, 1, 1, 1])

    def test_dinf_continuation(self):
        family = family_dinf(3, 4)
        assert family.admits_continuation([4, 4])
        assert not family.admits_continuation([5, 1])

    def test_family_validation(self):
        with pytest.raises(ProfileError):
            ProfileFamily(kind="weird", n=3, bound=5)
        with pytest.raises(ProfileError):
            family_d1(1, 5)
