"""The ``repro.devtools`` lint engine: every rule fires on its
violating fixture, stays quiet on the sanctioned form, suppressions
are honored only when justified, reporters keep their schema — and the
engine runs clean over ``src/`` at HEAD."""

import json
from pathlib import Path

import pytest

from repro.devtools import (
    DEFAULT_POLICY,
    FamilyScope,
    LintEngine,
    Policy,
    all_rules,
    get_rule,
    render_json,
    render_text,
)
from repro.devtools.registry import Rule, register
from repro.errors import LintError

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"

#: Virtual paths that enable each family under DEFAULT_POLICY. The
#: generic fixtures live outside ``*/repro/*`` so the REPRO6 docs
#: policy stays quiet about their (intentionally terse) snippets;
#: DOCS_PATH opts a fixture into it.
DET_PATH = "src/simcore/snippet.py"            # REPRO1 (+3/4/5)
DECODER_PATH = "src/simcore/wal.py"            # REPRO2 via */wal.py
DOCS_PATH = "src/repro/simulation/snippet.py"  # + REPRO6
DEVTOOLS_PATH = "src/repro/devtools/snippet.py"  # REPRO1 excluded


def lint_one(source, path=DET_PATH):
    return LintEngine().lint_sources({path: source})


def codes(report):
    return [f.rule for f in report.findings]


# -- per-rule fixtures: violating + sanctioned -------------------------------

#: code -> (path, violating snippet). The completeness test below
#: asserts every registered rule has an entry and demonstrably fires.
VIOLATIONS = {
    "REPRO001": (DET_PATH, "x = 1  # noqa: REPRO\n"),
    "REPRO002": (DET_PATH, "x = 1  # noqa: REPRO101 -- nothing fires here\n"),
    "REPRO101": (DET_PATH, "import random\nx = random.random()\n"),
    "REPRO102": (DET_PATH, "h = hash('key')\n"),
    "REPRO103": (DET_PATH, "import time\nt = time.time()\n"),
    "REPRO104": (DET_PATH, "for item in {1, 2, 3}:\n    print(item)\n"),
    "REPRO105": (DET_PATH, "import os\nb = os.urandom(8)\n"),
    "REPRO201": (
        DECODER_PATH,
        "def decode_record(buf):\n"
        "    n = int.from_bytes(buf[0:4], 'big')\n"
        "    return buf[4 : 4 + n]\n",
    ),
    "REPRO301": (
        DET_PATH,
        "import time\n"
        "async def handler():\n"
        "    time.sleep(1)\n",
    ),
    "REPRO302": (
        DET_PATH,
        "import asyncio\nloop = asyncio.get_event_loop()\n",
    ),
    "REPRO401": (
        DET_PATH,
        "def recover():\n"
        "    try:\n"
        "        risky()\n"
        "    except Exception:\n"
        "        pass\n",
    ),
    "REPRO402": (
        DET_PATH,
        "import contextlib\n"
        "def serve():\n"
        "    with contextlib.suppress(Exception):\n"
        "        risky()\n",
    ),
    "REPRO501": (
        DET_PATH,
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Options:\n"
        "    dead_knob: int = 0\n",
    ),
    "REPRO502": (
        DET_PATH,
        "class MiniRocks:\n"
        "    def put(self, key, value):\n"
        "        self._memtable[key] = value\n",
    ),
    "REPRO601": (
        DOCS_PATH,
        "def remaining_capacity(state):\n"
        "    return state.m - state.count\n",
    ),
}


def test_every_registered_rule_has_a_firing_fixture():
    registered = {rule.code for rule in all_rules()}
    # REPRO001/REPRO002 are the engine's own meta-rules (suppression
    # discipline), not registry entries — but they too must fire.
    assert registered == set(VIOLATIONS) - {"REPRO001", "REPRO002"}, (
        "rule catalog and fixture table out of sync"
    )
    for code, (path, snippet) in sorted(VIOLATIONS.items()):
        report = lint_one(snippet, path=path)
        assert code in codes(report), (
            f"{code} did not fire on its violation fixture:\n{snippet}"
        )


def test_rule_metadata_is_complete():
    seen_families = set()
    for rule in all_rules():
        assert rule.code.startswith("REPRO") and rule.code[5:].isdigit()
        assert rule.summary, f"{rule.code} has no summary"
        assert rule.name != "abstract"
        seen_families.add(rule.family)
    # All five shipped families plus the meta family are represented.
    assert {"REPRO1", "REPRO2", "REPRO3", "REPRO4", "REPRO5"} <= (
        seen_families
    )
    assert len(all_rules()) >= 12


# -- determinism family ------------------------------------------------------

def test_repro101_sanctions_seeded_random_instances():
    clean = (
        "import random\n"
        "rng = random.Random(7)\n"
        "x = rng.random()\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro101_skipped_in_devtools_paths():
    source = "import random\nx = random.random()\n"
    assert codes(lint_one(source, path=DEVTOOLS_PATH)) == []
    assert codes(lint_one(source, path=DET_PATH)) == ["REPRO101"]


def test_repro102_builtin_hash_only():
    clean = "import hashlib\nh = hashlib.blake2b(b'key').digest()\n"
    assert codes(lint_one(clean)) == []


def test_repro103_perf_counter_is_sanctioned():
    clean = (
        "import time\n"
        "t0 = time.perf_counter()\n"
        "tm = time.monotonic()\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro103_datetime_now_fires():
    source = "import datetime\nts = datetime.datetime.now()\n"
    assert codes(lint_one(source)) == ["REPRO103"]


def test_repro104_sorted_set_is_sanctioned():
    clean = (
        "xs = [3, 1, 2]\n"
        "for item in sorted(set(xs)):\n"
        "    print(item)\n"
        "ys = sorted({1, 2})\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro104_list_of_set_fires():
    assert codes(lint_one("ys = list(set([1, 2]))\n")) == ["REPRO104"]


def test_repro104_comprehension_over_set_fires():
    source = "ys = [x for x in {1, 2}]\n"
    assert codes(lint_one(source)) == ["REPRO104"]


def test_repro105_uuid4_and_secrets_fire():
    source = (
        "import uuid\n"
        "import secrets\n"
        "a = uuid.uuid4()\n"
        "b = secrets.token_bytes(4)\n"
    )
    assert codes(lint_one(source)) == ["REPRO105", "REPRO105"]


# -- decoder bounds ----------------------------------------------------------

def test_repro201_guarded_slice_is_clean():
    clean = (
        "def decode_record(buf):\n"
        "    n = int.from_bytes(buf[0:4], 'big')\n"
        "    if 4 + n > len(buf):\n"
        "        raise ValueError('truncated')\n"
        "    return buf[4 : 4 + n]\n"
    )
    assert codes(lint_one(clean, path=DECODER_PATH)) == []


def test_repro201_taint_propagates_through_assignments():
    source = (
        "def decode_record(buf):\n"
        "    n = int.from_bytes(buf[0:4], 'big')\n"
        "    end = 4 + n\n"
        "    return buf[4:end]\n"
    )
    assert codes(lint_one(source, path=DECODER_PATH)) == ["REPRO201"]


def test_repro201_only_in_decoder_named_functions():
    source = (
        "def format_header(buf):\n"
        "    n = int.from_bytes(buf[0:4], 'big')\n"
        "    return buf[4 : 4 + n]\n"
    )
    assert codes(lint_one(source, path=DECODER_PATH)) == []


def test_repro201_only_in_decoder_files():
    _, snippet = VIOLATIONS["REPRO201"]
    assert codes(lint_one(snippet, path=DET_PATH)) == []


def test_repro201_struct_unpack_is_a_taint_source():
    source = (
        "import struct\n"
        "def parse_header(buf):\n"
        "    (n,) = struct.unpack_from('>I', buf, 0)\n"
        "    return buf[4 : 4 + n]\n"
    )
    assert codes(lint_one(source, path=DECODER_PATH)) == ["REPRO201"]


# -- asyncio hygiene ---------------------------------------------------------

def test_repro301_await_sleep_is_clean():
    clean = (
        "import asyncio\n"
        "async def handler():\n"
        "    await asyncio.sleep(1)\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro301_skips_nested_sync_defs():
    clean = (
        "import os\n"
        "async def handler(loop):\n"
        "    def _sync_part():\n"
        "        os.fsync(3)\n"
        "    await loop.run_in_executor(None, _sync_part)\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro301_open_and_fsync_fire():
    source = (
        "import os\n"
        "async def handler():\n"
        "    with open('f') as fh:\n"
        "        data = fh.read()\n"
        "    os.fsync(3)\n"
    )
    assert codes(lint_one(source)) == ["REPRO301", "REPRO301"]


def test_repro301_ignores_sync_functions():
    clean = "import time\ndef slow():\n    time.sleep(1)\n"
    # time.sleep outside async def is REPRO301-clean (and not a
    # REPRO103 wall-clock read either: sleeping isn't reading).
    assert codes(lint_one(clean)) == []


def test_repro302_get_running_loop_is_clean():
    clean = (
        "import asyncio\n"
        "async def handler():\n"
        "    loop = asyncio.get_running_loop()\n"
    )
    assert codes(lint_one(clean)) == []


# -- exception discipline ----------------------------------------------------

def test_repro401_reraise_is_sanctioned():
    clean = (
        "def recover():\n"
        "    try:\n"
        "        risky()\n"
        "    except Exception:\n"
        "        cleanup()\n"
        "        raise\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro401_using_the_exception_is_sanctioned():
    clean = (
        "def recover(report):\n"
        "    try:\n"
        "        risky()\n"
        "    except Exception as exc:\n"
        "        report.errors.append(exc)\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro401_logging_is_sanctioned():
    clean = (
        "import warnings\n"
        "def recover():\n"
        "    try:\n"
        "        risky()\n"
        "    except Exception:\n"
        "        warnings.warn('recovery failed')\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro401_narrow_except_is_clean():
    clean = (
        "def recover():\n"
        "    try:\n"
        "        risky()\n"
        "    except ValueError:\n"
        "        pass\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro401_bare_except_fires():
    source = (
        "def recover():\n"
        "    try:\n"
        "        risky()\n"
        "    except:\n"
        "        pass\n"
    )
    assert codes(lint_one(source)) == ["REPRO401"]


def test_repro402_cleanup_functions_are_sanctioned():
    clean = (
        "import contextlib\n"
        "def close(self):\n"
        "    with contextlib.suppress(Exception):\n"
        "        self.flush()\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro402_finally_blocks_are_sanctioned():
    clean = (
        "import contextlib\n"
        "def serve():\n"
        "    try:\n"
        "        work()\n"
        "    finally:\n"
        "        with contextlib.suppress(Exception):\n"
        "            teardown()\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro402_narrow_suppress_is_clean():
    clean = (
        "import contextlib\n"
        "def serve():\n"
        "    with contextlib.suppress(KeyError):\n"
        "        del cache['k']\n"
    )
    assert codes(lint_one(clean)) == []


# -- API invariants ----------------------------------------------------------

def test_repro501_consumed_fields_are_clean():
    clean = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Options:\n"
        "    live_knob: int = 0\n"
        "def use(options):\n"
        "    return options.live_knob * 2\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro501_consumption_may_cross_modules():
    report = LintEngine().lint_sources({
        "src/simcore/options_fixture.py": (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Options:\n"
            "    live_knob: int = 0\n"
        ),
        "src/simcore/consumer_fixture.py": (
            "def use(options):\n"
            "    return options.live_knob\n"
        ),
    })
    assert codes(report) == []


def test_repro501_ignores_non_config_dataclasses():
    clean = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Unrelated:\n"
        "    dead_knob: int = 0\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro502_stats_touch_is_clean():
    clean = (
        "class MiniRocks:\n"
        "    def put(self, key, value):\n"
        "        self._memtable[key] = value\n"
        "        self.stats.puts += 1\n"
    )
    assert codes(lint_one(clean)) == []


def test_repro601_documented_surface_is_clean():
    clean = (
        'def rate(seed, tick):\n'
        '    """Offered load at ``tick``, ops per logical second."""\n'
        '    return 1.0\n'
        'class Controller:\n'
        '    """Scales the fleet against the SLO."""\n'
        '    def observe(self, tick):\n'
        '        """Feed one arrival into the queue model."""\n'
    )
    assert codes(lint_one(clean, path=DOCS_PATH)) == []


def test_repro601_flags_undocumented_class_and_method():
    source = (
        "class Controller:\n"
        "    def observe(self, tick):\n"
        "        return tick\n"
    )
    assert codes(lint_one(source, path=DOCS_PATH)) == [
        "REPRO601",
        "REPRO601",
    ]


def test_repro601_exemptions():
    # Private names, nested defs, private-class members, @property
    # setters, and @overload stubs all live outside the rule.
    clean = (
        "from typing import overload\n"
        "def _helper():\n"
        "    return 1\n"
        "def outer():\n"
        '    """Docstring on the public owner."""\n'
        "    def inner():\n"
        "        return 2\n"
        "    return inner\n"
        "class _Private:\n"
        "    def member(self):\n"
        "        return 3\n"
        "class Knob:\n"
        '    """A documented public class."""\n'
        "    @property\n"
        "    def value(self):\n"
        '        """The knob position."""\n'
        "        return self._value\n"
        "    @value.setter\n"
        "    def value(self, new):\n"
        "        self._value = new\n"
        "@overload\n"
        "def convert(x: int) -> int: ...\n"
        "def convert(x):\n"
        '    """Identity, typed per overload."""\n'
        "    return x\n"
    )
    assert codes(lint_one(clean, path=DOCS_PATH)) == []


def test_repro601_quiet_outside_library_paths():
    source = "def undocumented():\n    return 1\n"
    assert codes(lint_one(source, path=DET_PATH)) == []
    assert codes(
        lint_one(source, path="tests/test_fixture.py")
    ) == []


def test_repro601_suppressible_with_justification():
    source = (
        "def size(store):  # noqa: REPRO601 -- the name is the doc\n"
        "    return len(store)\n"
    )
    report = lint_one(source, path=DOCS_PATH)
    assert codes(report) == []
    assert [f.rule for f in report.suppressed] == ["REPRO601"]


# -- suppressions ------------------------------------------------------------

def test_justified_suppression_silences_and_is_reported():
    source = (
        "import time\n"
        "t = time.time()  # noqa: REPRO103 -- fixture wall clock\n"
    )
    report = lint_one(source)
    assert codes(report) == []
    assert [f.rule for f in report.suppressed] == ["REPRO103"]


def test_unjustified_suppression_is_rejected():
    source = "import time\nt = time.time()  # noqa: REPRO103\n"
    report = lint_one(source)
    # The original finding survives AND the naked noqa is flagged.
    assert codes(report) == ["REPRO001", "REPRO103"]


def test_bare_noqa_repro_is_a_finding():
    report = lint_one("x = 1  # noqa: REPRO\n")
    assert codes(report) == ["REPRO001"]


def test_unused_justified_suppression_is_a_finding():
    report = lint_one("x = 1  # noqa: REPRO101 -- stale reason\n")
    assert codes(report) == ["REPRO002"]


def test_suppression_only_matches_its_line_and_code():
    source = (
        "import time\n"
        "t = time.time()  # noqa: REPRO101 -- wrong code\n"
    )
    report = lint_one(source)
    # Wrong code: REPRO103 stays, and the suppression is unused.
    assert codes(report) == ["REPRO002", "REPRO103"]


def test_multi_code_suppression():
    source = (
        "import time\n"
        "t = [time.time() for x in {1, 2}]"
        "  # noqa: REPRO103,REPRO104 -- fixture exercising both\n"
    )
    report = lint_one(source)
    assert codes(report) == []
    assert sorted(f.rule for f in report.suppressed) == [
        "REPRO103",
        "REPRO104",
    ]


# -- reporters ---------------------------------------------------------------

def test_json_reporter_schema():
    _, snippet = VIOLATIONS["REPRO103"]
    payload = json.loads(render_json(lint_one(snippet)))
    assert payload["version"] == 1
    assert payload["files_checked"] == 1
    assert payload["counts"] == {"REPRO103": 1}
    assert payload["suppressed"] == []
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["rule"] == "REPRO103"
    assert finding["path"] == DET_PATH
    assert finding["line"] == 2


def test_text_reporter_mentions_location_and_counts():
    _, snippet = VIOLATIONS["REPRO103"]
    text = render_text(lint_one(snippet))
    assert f"{DET_PATH}:2" in text
    assert "REPRO103" in text
    assert "1 finding(s)" in text


def test_text_reporter_clean_run():
    text = render_text(lint_one("x = 1\n"))
    assert text.startswith("clean: 0 findings")


# -- engine plumbing ---------------------------------------------------------

def test_engine_rejects_missing_paths(tmp_path):
    with pytest.raises(LintError):
        LintEngine().lint_paths([str(tmp_path / "nope.py")])


def test_engine_rejects_unparsable_source():
    with pytest.raises(LintError):
        lint_one("def broken(:\n")


def test_registry_rejects_duplicate_codes():
    with pytest.raises(LintError):
        @register
        class Duplicate(Rule):  # pragma: no cover - never runs
            code = "REPRO101"
            family = "REPRO1"


def test_registry_unknown_code():
    with pytest.raises(LintError):
        get_rule("REPRO999")
    assert get_rule("REPRO101").name == "global-random"


def test_policy_families_for_paths():
    families = DEFAULT_POLICY.families_for("src/repro/kvstore/wal.py")
    assert {"REPRO0", "REPRO1", "REPRO2", "REPRO6"} <= families
    nondecoder = DEFAULT_POLICY.families_for("src/repro/kvstore/db.py")
    assert "REPRO2" not in nondecoder
    devtools = DEFAULT_POLICY.families_for(
        "src/repro/devtools/engine.py"
    )
    assert "REPRO1" not in devtools
    assert "REPRO6" in devtools  # the linter documents itself too
    tests = DEFAULT_POLICY.families_for("src/repro/tests/test_x.py")
    assert "REPRO6" not in tests


def test_custom_policy_scopes():
    policy = Policy(
        scopes=(FamilyScope(family="REPRO1", include=("*/only_here/*",)),)
    )
    report = LintEngine(policy=policy).lint_sources(
        {"elsewhere/mod.py": "import time\nt = time.time()\n"}
    )
    assert codes(report) == []


# -- the repo itself ---------------------------------------------------------

def test_src_tree_is_lint_clean():
    """The acceptance gate: the full engine over src/ at HEAD."""
    report = LintEngine().lint_paths([str(SRC_ROOT)])
    assert report.findings == [], render_text(report)
    # Sanity: this really was the whole tree, not an empty walk.
    assert report.files_checked >= 90
    # Every suppression in the tree is justified and load-bearing
    # (REPRO001/REPRO002 would have fired above otherwise).
    assert len(report.suppressed) >= 1


# -- CLI ---------------------------------------------------------------------

def _write_tree(tmp_path, source):
    pkg = tmp_path / "repro" / "simulation"
    pkg.mkdir(parents=True)
    target = pkg / "snippet.py"
    target.write_text(source)
    return target


def test_cli_lint_exits_nonzero_on_violation(tmp_path, capsys):
    from repro.cli import main

    target = _write_tree(tmp_path, "import time\nt = time.time()\n")
    assert main(["lint", str(target)]) == 1
    out = capsys.readouterr().out
    assert "REPRO103" in out


def test_cli_lint_exits_zero_on_clean(tmp_path, capsys):
    from repro.cli import main

    target = _write_tree(tmp_path, "x = 1\n")
    assert main(["lint", str(target)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_json_format(tmp_path, capsys):
    from repro.cli import main

    target = _write_tree(tmp_path, "import time\nt = time.time()\n")
    assert main(["lint", str(target), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"REPRO103": 1}


def test_module_entry_point_matches_cli(tmp_path, capsys):
    from repro.devtools import main as devtools_main

    target = _write_tree(tmp_path, "import time\nt = time.time()\n")
    assert devtools_main([str(target)]) == 1
    assert "REPRO103" in capsys.readouterr().out
