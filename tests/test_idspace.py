"""Unit tests for ID encodings and structured layouts."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.idspace.encoding import (
    bytes_width_for,
    id_from_base32,
    id_from_bytes,
    id_from_hex,
    id_from_uuid_string,
    id_to_base32,
    id_to_bytes,
    id_to_hex,
    id_to_uuid_string,
)
from repro.idspace.structured import SessionIDGenerator, StructuredIDLayout


class TestEncoding:
    def test_width(self):
        assert bytes_width_for(256) == 1
        assert bytes_width_for(257) == 2
        assert bytes_width_for(1 << 128) == 16

    def test_bytes_roundtrip(self):
        for m in (100, 1 << 20, 1 << 128):
            for value in (0, 1, m - 1):
                assert id_from_bytes(id_to_bytes(value, m), m) == value

    def test_hex_roundtrip(self):
        assert id_from_hex(id_to_hex(0xDEAD, 1 << 32), 1 << 32) == 0xDEAD
        assert id_to_hex(0xDEAD, 1 << 32) == "0000dead"

    def test_base32_roundtrip(self):
        m = 1 << 40
        for value in (0, 1, 31, 32, m - 1):
            assert id_from_base32(id_to_base32(value, m), m) == value

    def test_base32_rejects_bad_chars(self):
        with pytest.raises(ConfigurationError):
            id_from_base32("u!", 1 << 10)  # 'u' not in Crockford set

    def test_uuid_string_roundtrip(self):
        value = (1 << 127) | 12345
        text = id_to_uuid_string(value)
        assert len(text) == 36 and text.count("-") == 4
        assert id_from_uuid_string(text) == value

    def test_uuid_string_validation(self):
        with pytest.raises(ConfigurationError):
            id_to_uuid_string(1 << 128)
        with pytest.raises(ConfigurationError):
            id_from_uuid_string("short")

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            id_to_bytes(100, 100)
        with pytest.raises(ConfigurationError):
            id_from_bytes(b"\xff\xff", 100)


class TestStructuredLayout:
    def test_compose_decompose(self):
        layout = StructuredIDLayout(total_bits=16, counter_bits=6)
        value = layout.compose(prefix=3, counter=17)
        assert value == (3 << 6) | 17
        assert layout.decompose(value) == (3, 17)

    def test_capacities(self):
        layout = StructuredIDLayout(total_bits=16, counter_bits=6)
        assert layout.m == 1 << 16
        assert layout.sessions == 1 << 10
        assert layout.ids_per_session == 64

    def test_bounds_enforced(self):
        layout = StructuredIDLayout(total_bits=8, counter_bits=3)
        with pytest.raises(ConfigurationError):
            layout.compose(prefix=1 << 5, counter=0)
        with pytest.raises(ConfigurationError):
            layout.compose(prefix=0, counter=8)
        with pytest.raises(ConfigurationError):
            layout.decompose(1 << 8)

    def test_layout_validation(self):
        with pytest.raises(ConfigurationError):
            StructuredIDLayout(total_bits=8, counter_bits=8)


class TestSessionGenerator:
    def test_is_cluster_in_disguise(self):
        """Sequential composite IDs == Cluster on 2^total_bits."""
        layout = StructuredIDLayout(total_bits=12, counter_bits=4)
        generator = SessionIDGenerator(layout, random.Random(3))
        ids = list(generator.iter_ids(100))
        for a, b in zip(ids, ids[1:]):
            assert (b - a) % layout.m == 1

    def test_counter_carries_into_prefix(self):
        layout = StructuredIDLayout(total_bits=8, counter_bits=2)
        generator = SessionIDGenerator(layout, random.Random(0))
        parts = [generator.next_parts() for _ in range(8)]
        counters = [counter for _, counter in parts]
        # Counter cycles 0..3 (starting anywhere) and wraps.
        for a, b in zip(counters, counters[1:]):
            assert b == (a + 1) % 4
